"""Process-level precision policy for the autograd engine.

Every tensor in the reproduction used to be hardwired to ``float64``.
That is the right *reference* numerics — the float64 path is the oracle
the equivalence suites pin against — but on a bandwidth-bound numpy
stack it moves twice the memory the forward/backward actually needs.
This module introduces a process-level :class:`PrecisionPolicy` that the
whole engine resolves its allocation dtype from:

``"float64"`` (default)
    Compute and master dtype are both ``np.float64``.  This policy is
    **bit-equal to the seed implementation** — it is the oracle, the
    same pattern as the sequential MC backend (PR 1) and the unfused
    scan backend (PR 2).
``"float32"``
    Compute and master dtype are both ``np.float32``: parameters,
    activations, gradients and optimizer moments all live in single
    precision.
``"mixed"``
    PyTorch-AMP style: ``np.float32`` compute with ``np.float64``
    *master* weights and optimizer moments inside
    :class:`~repro.optim.Adam`.  The forward/backward move float32;
    the optimizer accumulates updates in float64 and casts back to the
    compute dtype at the step boundary, keeping long-horizon update
    numerics stable.

The active policy is plain module-level state (the engine is
single-threaded per process; worker processes of the sweep orchestrator
each resolve their own policy from the cell's
:class:`~repro.core.TrainingConfig`).  Use :func:`set_precision` for a
process-wide switch and :func:`use_precision` for a scoped one::

    with use_precision("float32"):
        out = model(x)          # float32 forward

Dtype-aware tolerances
----------------------
Finite-difference gradient checks and the float32-vs-float64
equivalence suites need looser tolerances at lower precision;
:func:`default_tolerances` centralises those per-dtype defaults so test
suites and benches agree on what "close enough" means.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

__all__ = [
    "PRECISION_POLICIES",
    "PrecisionPolicy",
    "get_precision",
    "set_precision",
    "use_precision",
    "resolve_policy",
    "compute_dtype",
    "master_dtype",
    "default_tolerances",
]

#: Recognised policy names, in documentation order.
PRECISION_POLICIES: Tuple[str, ...] = ("float64", "float32", "mixed")


@dataclass(frozen=True)
class PrecisionPolicy:
    """An immutable (name, compute dtype, master dtype) triple."""

    name: str
    compute: np.dtype
    master: np.dtype

    @property
    def is_mixed(self) -> bool:
        """Whether the optimizer should keep separate master weights."""
        return self.compute != self.master


_POLICIES: Dict[str, PrecisionPolicy] = {
    "float64": PrecisionPolicy("float64", np.dtype(np.float64), np.dtype(np.float64)),
    "float32": PrecisionPolicy("float32", np.dtype(np.float32), np.dtype(np.float32)),
    "mixed": PrecisionPolicy("mixed", np.dtype(np.float32), np.dtype(np.float64)),
}

_active: PrecisionPolicy = _POLICIES["float64"]


def _resolve(policy: "str | PrecisionPolicy") -> PrecisionPolicy:
    """Coerce a policy name (or policy) to a :class:`PrecisionPolicy`."""
    if isinstance(policy, PrecisionPolicy):
        return policy
    try:
        return _POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown precision policy {policy!r} "
            f"(choose from {', '.join(PRECISION_POLICIES)})"
        ) from None


def resolve_policy(policy: "str | PrecisionPolicy") -> PrecisionPolicy:
    """Look up a policy by name without activating it."""
    return _resolve(policy)


def get_precision() -> PrecisionPolicy:
    """Return the active :class:`PrecisionPolicy`."""
    return _active


def set_precision(policy: "str | PrecisionPolicy") -> PrecisionPolicy:
    """Set the process-wide policy; returns the newly active policy."""
    global _active
    _active = _resolve(policy)
    return _active


@contextmanager
def use_precision(policy: "str | PrecisionPolicy") -> Iterator[PrecisionPolicy]:
    """Scoped :func:`set_precision`; restores the previous policy on exit."""
    previous = _active
    resolved = set_precision(policy)
    try:
        yield resolved
    finally:
        set_precision(previous)


def compute_dtype() -> np.dtype:
    """The dtype new tensors/buffers should allocate in."""
    return _active.compute


def master_dtype() -> np.dtype:
    """The dtype master weights / optimizer moments should live in."""
    return _active.master


#: Per-dtype default tolerances: (fd eps, atol, rtol) for gradient
#: checks and the float32-vs-float64 equivalence comparisons.  The
#: float32 eps sits near cbrt(machine eps) ~ 5e-3, the classic optimum
#: for central finite differences.
_TOLERANCES: Dict[np.dtype, Dict[str, float]] = {
    np.dtype(np.float64): {"eps": 1e-6, "atol": 1e-5, "rtol": 1e-4},
    np.dtype(np.float32): {"eps": 5e-3, "atol": 5e-2, "rtol": 5e-2},
}


def default_tolerances(dtype: "np.dtype | type | str") -> Dict[str, float]:
    """Return ``{"eps", "atol", "rtol"}`` defaults for ``dtype``.

    Unknown floating dtypes fall back to the float64 entry; the dict is
    a fresh copy, safe to mutate.
    """
    key = np.dtype(dtype)
    return dict(_TOLERANCES.get(key, _TOLERANCES[np.dtype(np.float64)]))
