"""Numerical gradient verification for the autograd engine.

Used by the test suite to certify every differentiable op against
central finite differences — the reproduction's equivalent of trusting
PyTorch's battle-tested backward implementations.

Dtype awareness
---------------
Finite differences degrade with the working precision: at float32 the
optimal central-difference step is near ``cbrt(machine eps) ~ 5e-3``
and the achievable agreement is a few per cent, while float64 supports
``eps = 1e-6`` with ``atol = 1e-5``.  Both :func:`numerical_gradient`
and :func:`check_gradients` therefore accept a ``dtype`` and resolve
any tolerance left as ``None`` from
:func:`repro.autograd.precision.default_tolerances`, so the float32
suites don't have to hand-tune numbers per test.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .precision import default_tolerances, use_precision
from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def _resolve_dtype(dtype, inputs: Sequence[np.ndarray]) -> np.dtype:
    """``dtype`` if given, else the numpy result type of ``inputs``."""
    if dtype is not None:
        return np.dtype(dtype)
    resolved = np.result_type(*[np.asarray(x) for x in inputs])
    if resolved.kind != "f":
        resolved = np.dtype(np.float64)
    return resolved


def _policy_scope(work: np.dtype):
    """Precision-policy context matching the working dtype.

    :class:`~repro.autograd.Tensor` coerces raw arrays to the *active*
    policy's compute dtype, so a float32 gradient check under the
    default float64 policy would silently upcast its evaluations.
    Activating the matching pure policy keeps the evaluations honest;
    for float64 (and anything unrecognised) this re-activates the
    float64 policy, a numerical no-op on the historical suites.
    """
    return use_precision("float32" if work == np.dtype(np.float32) else "float64")


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: Optional[float] = None,
    dtype=None,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping :class:`Tensor` arguments to a Tensor.
    inputs:
        Raw numpy arrays for each argument.
    index:
        Which argument to differentiate.
    eps:
        Finite-difference step; defaults to the working dtype's entry in
        :func:`~repro.autograd.precision.default_tolerances`.
    dtype:
        Working dtype for the perturbed evaluations (default: inferred
        from ``inputs``, float64 for non-float inputs).

    The difference quotient itself is always accumulated in float64 —
    only the function evaluations run at the working precision.
    """
    work = _resolve_dtype(dtype, inputs)
    if eps is None:
        eps = default_tolerances(work)["eps"]
    base = [np.asarray(x, dtype=work).copy() for x in inputs]
    grad = np.zeros(base[index].shape, dtype=np.float64)
    flat = grad.reshape(-1)
    target = base[index].reshape(-1)
    with _policy_scope(work):
        for i in range(target.size):
            original = target[i]
            target[i] = original + work.type(eps)
            plus = float(fn(*[Tensor(b) for b in base]).sum().item())
            target[i] = original - work.type(eps)
            minus = float(fn(*[Tensor(b) for b in base]).sum().item())
            target[i] = original
            flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: Optional[float] = None,
    rtol: Optional[float] = None,
    eps: Optional[float] = None,
    dtype=None,
) -> bool:
    """Compare analytic and numerical gradients for every input.

    Tolerances left as ``None`` resolve from the working dtype (see
    :func:`~repro.autograd.precision.default_tolerances`); under the
    default float64 policy that reproduces the historical
    ``atol=1e-5, rtol=1e-4, eps=1e-6``.

    Returns ``True`` on success; raises ``AssertionError`` with a
    diagnostic message on mismatch.
    """
    work = _resolve_dtype(dtype, inputs)
    defaults = default_tolerances(work)
    atol = defaults["atol"] if atol is None else atol
    rtol = defaults["rtol"] if rtol is None else rtol
    eps = defaults["eps"] if eps is None else eps
    with _policy_scope(work):
        tensors = [
            Tensor(np.asarray(x, dtype=work), requires_grad=True) for x in inputs
        ]
        out = fn(*tensors)
        out.sum().backward()
    for i, t in enumerate(tensors):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps, dtype=work)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {i} (dtype {work}): "
                f"max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
