"""Numerical gradient verification for the autograd engine.

Used by the test suite to certify every differentiable op against
central finite differences — the reproduction's equivalent of trusting
PyTorch's battle-tested backward implementations.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping :class:`Tensor` arguments to a Tensor.
    inputs:
        Raw numpy arrays for each argument.
    index:
        Which argument to differentiate.
    eps:
        Finite-difference step.
    """
    base = [np.asarray(x, dtype=np.float64).copy() for x in inputs]
    grad = np.zeros_like(base[index])
    flat = grad.reshape(-1)
    target = base[index].reshape(-1)
    for i in range(target.size):
        original = target[i]
        target[i] = original + eps
        plus = float(fn(*[Tensor(b) for b in base]).sum().item())
        target[i] = original - eps
        minus = float(fn(*[Tensor(b) for b in base]).sum().item())
        target[i] = original
        flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients for every input.

    Returns ``True`` on success; raises ``AssertionError`` with a
    diagnostic message on mismatch.
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.sum().backward()
    for i, t in enumerate(tensors):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
