"""Gradient-tracking context management.

Mirrors the semantics of ``torch.no_grad()``: inside a disabled region,
newly created tensors do not record a backward graph even when their
inputs require gradients.  The state is process-global (the engine is
single-threaded, like the experiments in the paper).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

_grad_enabled: bool = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record a backward graph."""
    return _grad_enabled


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable gradient recording."""
    global _grad_enabled
    _grad_enabled = bool(enabled)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph recording.

    Example
    -------
    >>> from repro.autograd import Tensor, no_grad
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2.0
    >>> y.requires_grad
    False
    """
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables graph recording inside ``no_grad``."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = True
    try:
        yield
    finally:
        _grad_enabled = previous
