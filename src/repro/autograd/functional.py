"""Free functions over :class:`~repro.autograd.tensor.Tensor`.

Multi-input graph builders (``stack``, ``concat``, ``where``) and the
numerically-stable softmax family used by the classification losses.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from . import tensor as _tensor
from .precision import compute_dtype
from .tensor import ArrayLike, Tensor

__all__ = [
    "stack",
    "concat",
    "where",
    "maximum",
    "minimum",
    "softmax",
    "log_softmax",
    "logsumexp",
    "one_hot",
    "outer",
]


def _as_tensor(x: ArrayLike) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [_as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate_grad(np.squeeze(piece, axis=axis))

    attrs = {"axis": axis} if _tensor._tracer is not None else None
    return Tensor._from_op(data, tensors, backward_fn, "stack", attrs)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis (differentiable)."""
    tensors = [_as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate_grad(grad[tuple(index)])

    attrs = {"axis": axis} if _tensor._tracer is not None else None
    return Tensor._from_op(data, tensors, backward_fn, "concat", attrs)


def where(condition: ArrayLike, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select: ``a`` where condition is true, else ``b``."""
    cond = np.asarray(condition, dtype=bool)
    a_t, b_t = _as_tensor(a), _as_tensor(b)
    data = np.where(cond, a_t.data, b_t.data)

    def backward_fn(grad: np.ndarray) -> None:
        from .tensor import _unbroadcast

        if a_t.requires_grad:
            a_t._accumulate_grad(_unbroadcast(grad * cond, a_t.shape))
        if b_t.requires_grad:
            b_t._accumulate_grad(_unbroadcast(grad * ~cond, b_t.shape))

    return Tensor._from_op(data, (a_t, b_t), backward_fn, "where")


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum; ties route the gradient to the first operand."""
    a_t, b_t = _as_tensor(a), _as_tensor(b)
    return where(a_t.data >= b_t.data, a_t, b_t)


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise minimum; ties route the gradient to the first operand."""
    a_t, b_t = _as_tensor(a), _as_tensor(b)
    return where(a_t.data <= b_t.data, a_t, b_t)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically-stable log-sum-exp along ``axis`` (differentiable)."""
    x = _as_tensor(x)
    # The max shift is a *detached* function of x: recorded as a
    # non-differentiable op (``backward_fn=None`` leaves the output a
    # plain leaf, exactly like the historical ``Tensor(x.data.max(...))``
    # wrapper) so the tape compiler can re-derive it from the live
    # buffer on every replay instead of baking in a stale constant.
    attrs = {"axis": axis} if _tensor._tracer is not None else None
    shift = Tensor._from_op(
        np.asarray(x.data.max(axis=axis, keepdims=True)), (x,), None, "detach_max", attrs
    )
    out = (x - shift).exp().sum(axis=axis, keepdims=True).log() + shift
    if not keepdims:
        out = out.squeeze(axis=axis if axis >= 0 else axis + x.ndim)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax along ``axis``, computed stably."""
    x = _as_tensor(x)
    return x - logsumexp(x, axis=axis, keepdims=True)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``, computed stably."""
    return log_softmax(x, axis=axis).exp()


def one_hot(labels: Union[np.ndarray, Sequence[int]], num_classes: int) -> np.ndarray:
    """One-hot encode integer labels into a ``(n, num_classes)`` array."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("label outside [0, num_classes)")
    out = np.zeros((labels.shape[0], num_classes), dtype=compute_dtype())
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def outer(a: Tensor, b: Tensor) -> Tensor:
    """Outer product of two 1-D tensors (differentiable)."""
    a, b = _as_tensor(a), _as_tensor(b)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("outer() expects 1-D tensors")
    return a.unsqueeze(1) * b.unsqueeze(0)
