"""Reverse-mode automatic differentiation engine (the PyTorch substitute).

Public API::

    from repro.autograd import Tensor, no_grad, stack, softmax, ...
"""

from .context import enable_grad, is_grad_enabled, no_grad, set_grad_enabled
from .function import FilterScan, Function, FunctionContext, filter_scan
from .functional import (
    concat,
    log_softmax,
    logsumexp,
    maximum,
    minimum,
    one_hot,
    outer,
    softmax,
    stack,
    where,
)
from .grad_check import check_gradients, numerical_gradient
from .precision import (
    PRECISION_POLICIES,
    PrecisionPolicy,
    compute_dtype,
    default_tolerances,
    get_precision,
    master_dtype,
    resolve_policy,
    set_precision,
    use_precision,
)
from .tape import (
    CompiledTape,
    TapeCache,
    TapeCapture,
    TapeCounters,
    TapeError,
    active_capture,
    dynamic,
    mark_dynamic,
    tape_counters,
    tracing,
)
from .tensor import Tensor

__all__ = [
    "Tensor",
    "PRECISION_POLICIES",
    "PrecisionPolicy",
    "get_precision",
    "set_precision",
    "use_precision",
    "resolve_policy",
    "compute_dtype",
    "master_dtype",
    "default_tolerances",
    "Function",
    "FunctionContext",
    "FilterScan",
    "filter_scan",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "stack",
    "concat",
    "where",
    "maximum",
    "minimum",
    "softmax",
    "log_softmax",
    "logsumexp",
    "one_hot",
    "outer",
    "check_gradients",
    "numerical_gradient",
    "TapeError",
    "TapeCapture",
    "CompiledTape",
    "TapeCache",
    "TapeCounters",
    "tape_counters",
    "tracing",
    "active_capture",
    "mark_dynamic",
    "dynamic",
]
