"""Reverse-mode automatic differentiation on numpy arrays.

This module is the PyTorch substitute for the ADAPT-pNC reproduction:
the paper trains printed-circuit component values by backpropagating
through the discrete-time circuit equations, which requires nothing more
than a correct reverse-mode engine over elementwise arithmetic, matrix
products, reductions, indexing and a handful of nonlinearities.

Design
------
Every :class:`Tensor` wraps a floating-point ``numpy.ndarray`` whose
dtype is resolved from the process-level precision policy
(:mod:`repro.autograd.precision`; ``float64`` by default — the
bit-equal oracle — with ``float32``/``mixed`` compute policies for the
bandwidth-bound hot path).  An operation on tensors produces a new
tensor holding references to its parents and a closure that, given the
gradient of the loss w.r.t. the output, accumulates gradients into the
parents.  :meth:`Tensor.backward` runs the closures in reverse
topological order; gradients are kept in each tensor's own dtype.

Broadcasting follows numpy semantics; gradients flowing into a
broadcast operand are reduced back to its shape by
:func:`_unbroadcast`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .context import is_grad_enabled
from .precision import compute_dtype

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

__all__ = ["Tensor", "ArrayLike", "set_tracer", "get_tracer"]

#: Optional op-trace hook installed by the tape compiler
#: (:mod:`repro.autograd.tape`).  When set, every ``_from_op`` call
#: invokes ``_tracer(out, parents, op, attrs)`` — including inside
#: ``no_grad`` regions, so forward-only (validation) graphs can be
#: captured too.  ``None`` keeps the hot path to a single global read.
_tracer = None


def set_tracer(tracer) -> None:
    """Install (or clear, with ``None``) the global op-trace hook."""
    global _tracer
    _tracer = tracer


def get_tracer():
    """Return the currently installed op-trace hook (or ``None``)."""
    return _tracer


def _as_array(data: ArrayLike) -> np.ndarray:
    """Coerce input data to a numpy array in the policy compute dtype."""
    if isinstance(data, Tensor):
        return data.data
    return np.asarray(data, dtype=compute_dtype())


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape of a broadcast result) back to ``shape``.

    Sums over the leading dimensions numpy prepended and over every axis
    where the operand had size 1 but the result did not.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Collapse broadcast (size-1) axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _is_basic_index(index) -> bool:
    """True when ``index`` uses only basic (non-fancy) numpy indexing.

    Basic indices (ints, slices, ``Ellipsis``, ``None``) select every
    element at most once, so the gradient scatter can use a plain
    in-place add instead of the much slower ``np.add.at``.
    """
    parts = index if isinstance(index, tuple) else (index,)
    return all(
        part is Ellipsis
        or part is None
        or isinstance(part, (int, np.integer, slice))
        for part in parts
    )


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array in the active policy's
        compute dtype (``float64`` under the default policy).
    requires_grad:
        Whether the tensor should accumulate gradients in
        :attr:`grad` when :meth:`backward` is called on a descendant.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "_op")

    # Ensure numpy defers to Tensor.__radd__ etc. for ndarray (op) Tensor.
    __array_priority__ = 100.0

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = ()
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None
        self._op: str = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Tensor of zeros with the given shape."""
        return Tensor(np.zeros(shape, dtype=compute_dtype()), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Tensor of ones with the given shape."""
        return Tensor(np.ones(shape, dtype=compute_dtype()), requires_grad=requires_grad)

    @staticmethod
    def full(shape: Sequence[int], value: float, requires_grad: bool = False) -> "Tensor":
        """Tensor filled with ``value``."""
        return Tensor(
            np.full(tuple(shape), float(value), dtype=compute_dtype()),
            requires_grad=requires_grad,
        )

    @staticmethod
    def eye(n: int, requires_grad: bool = False) -> "Tensor":
        """Identity matrix of size ``n``."""
        return Tensor(np.eye(n, dtype=compute_dtype()), requires_grad=requires_grad)

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward_fn: Optional[Callable[[np.ndarray], None]],
        op: str,
        attrs: Optional[dict] = None,
    ) -> "Tensor":
        """Build the result tensor of an op, wiring the graph if needed.

        ``backward_fn=None`` marks a deliberately non-differentiable op
        (e.g. the detached max shift of ``logsumexp``): the output never
        requires grad, exactly like wrapping the result in a fresh leaf.
        ``attrs`` carries the op's non-tensor arguments for the tape
        compiler's replay kernels; it is ignored unless a tracer is
        installed.
        """
        parents = tuple(parents)
        requires = (
            backward_fn is not None
            and is_grad_enabled()
            and any(p.requires_grad for p in parents)
        )
        out = cls(data)
        out.requires_grad = requires
        if requires:
            # Keep only grad-bearing parents: backward()'s topo walk
            # never descends into the others, so dropping them up front
            # removes dead DFS work on every interpreted backward.
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward_fn = backward_fn
            out._op = op
        if _tracer is not None:
            _tracer(out, parents, op, attrs)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def T(self) -> "Tensor":
        """Transpose (reverses all axes)."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying data as a numpy array."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        out = Tensor(self.data)
        return out

    # ------------------------------------------------------------------
    # Gradient plumbing
    # ------------------------------------------------------------------

    def _accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer.

        The first accumulation materialises ``grad`` with one copy
        (which also densifies stride-0 broadcast views) instead of a
        ``zeros_like`` write followed by ``+=`` — one full memory pass
        saved on every tensor in the graph.
        """
        if self.grad is None:
            if grad.shape == self.data.shape:
                self.grad = np.array(grad, dtype=self.data.dtype)
                return
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset the gradient buffer to ``None``."""
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  May be
            omitted only for scalar tensors (implied to be 1.0).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.broadcast_to(_as_array(grad), self.data.shape).astype(self.data.dtype)

        # Topological order via iterative DFS (recursion-free: RNN graphs
        # over long sequences would overflow Python's stack otherwise).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate_grad(_unbroadcast(grad, other_t.shape))

        return Tensor._from_op(data, (self, other_t), backward_fn, "add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate_grad(_unbroadcast(-grad, other_t.shape))

        return Tensor._from_op(data, (self, other_t), backward_fn, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(_unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate_grad(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._from_op(data, (self, other_t), backward_fn, "mul")

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(_unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate_grad(
                    _unbroadcast(-grad * self.data / other_t.data**2, other_t.shape)
                )

        return Tensor._from_op(data, (self, other_t), backward_fn, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(-grad)

        return Tensor._from_op(data, (self,), backward_fn, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp(b*log(a))")
        exponent = float(exponent)
        data = self.data**exponent

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * exponent * self.data ** (exponent - 1.0))

        attrs = {"exponent": exponent} if _tracer is not None else None
        return Tensor._from_op(data, (self,), backward_fn, "pow", attrs)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward_fn(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if self.requires_grad:
                if b.ndim == 1:
                    # (..., n) @ (n,) -> (...,): grad has shape (...,)
                    grad_a = np.multiply.outer(grad, b) if grad.ndim else grad * b
                    self._accumulate_grad(_unbroadcast(np.asarray(grad_a), self.shape))
                elif a.ndim == 1:
                    self._accumulate_grad(_unbroadcast(grad @ np.swapaxes(b, -1, -2), self.shape))
                else:
                    self._accumulate_grad(
                        _unbroadcast(grad @ np.swapaxes(b, -1, -2), self.shape)
                    )
            if other_t.requires_grad:
                if a.ndim == 1:
                    grad_b = np.multiply.outer(a, grad) if grad.ndim else a * grad
                    other_t._accumulate_grad(_unbroadcast(np.asarray(grad_b), other_t.shape))
                elif b.ndim == 1:
                    grad_b = np.swapaxes(a, -1, -2) @ grad[..., None]
                    other_t._accumulate_grad(_unbroadcast(grad_b[..., 0], other_t.shape))
                else:
                    other_t._accumulate_grad(
                        _unbroadcast(np.swapaxes(a, -1, -2) @ grad, other_t.shape)
                    )

        return Tensor._from_op(data, (self, other_t), backward_fn, "matmul")

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__matmul__(self)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        data = np.exp(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * data)

        return Tensor._from_op(data, (self,), backward_fn, "exp")

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        data = np.log(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad / self.data)

        return Tensor._from_op(data, (self,), backward_fn, "log")

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        data = np.sqrt(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * 0.5 / data)

        return Tensor._from_op(data, (self,), backward_fn, "sqrt")

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        data = np.tanh(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * (1.0 - data**2))

        return Tensor._from_op(data, (self,), backward_fn, "tanh")

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * data * (1.0 - data))

        return Tensor._from_op(data, (self,), backward_fn, "sigmoid")

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        mask = self.data > 0
        data = self.data * mask

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * mask)

        return Tensor._from_op(data, (self,), backward_fn, "relu")

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at 0)."""
        data = np.abs(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * np.sign(self.data))

        return Tensor._from_op(data, (self,), backward_fn, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside."""
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        attrs = {"low": low, "high": high} if _tracer is not None else None

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * mask)

        return Tensor._from_op(data, (self,), backward_fn, "clip", attrs)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        """Sum over the given axis (or everything)."""
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward_fn(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate_grad(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        attrs = {"axis": axis, "keepdims": keepdims} if _tracer is not None else None
        return Tensor._from_op(np.asarray(data), (self,), backward_fn, "sum", attrs)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over the given axis (or everything)."""
        data = self.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]

        def backward_fn(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad / count
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            # The stride-0 broadcast view is densified (one copy) by
            # _accumulate_grad itself; no eager astype copy needed.
            g = np.asarray(g, dtype=self.data.dtype)
            self._accumulate_grad(np.broadcast_to(g, self.shape))

        attrs = {"axis": axis, "keepdims": keepdims} if _tracer is not None else None
        return Tensor._from_op(np.asarray(data), (self,), backward_fn, "mean", attrs)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Maximum over an axis; ties split the gradient equally."""
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward_fn(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                d = np.expand_dims(d, axis=axis)
            mask = (self.data == d).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate_grad(mask * g)

        attrs = {"axis": axis, "keepdims": keepdims} if _tracer is not None else None
        return Tensor._from_op(np.asarray(data), (self,), backward_fn, "max", attrs)

    def min(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Minimum over an axis; ties split the gradient equally."""
        return (-self).max(axis=axis, keepdims=keepdims).__neg__()

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Population variance built from differentiable primitives.

        A single ``diff = self - mu`` node is squared as ``diff * diff``
        — building ``(self - mu)`` twice would add a redundant graph
        node and a second full-size temporary per call.
        """
        mu = self.mean(axis=axis, keepdims=True)
        diff = self - mu
        return (diff * diff).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape without copying semantics for gradients."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad.reshape(original))

        attrs = {"shape": tuple(shape)} if _tracer is not None else None
        return Tensor._from_op(data, (self,), backward_fn, "reshape", attrs)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Interchange two axes (differentiable).

        Unlike :attr:`T` (which reverses *all* axes) this swaps exactly
        two — the building block for batched matrix products such as the
        Monte-Carlo crossbar path, where ``(draws, out, in)`` weight
        stacks must become ``(draws, in, out)`` operands.
        """
        data = np.swapaxes(self.data, axis1, axis2)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(np.swapaxes(grad, axis1, axis2))

        attrs = {"axis1": axis1, "axis2": axis2} if _tracer is not None else None
        return Tensor._from_op(data, (self,), backward_fn, "swapaxes", attrs)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes (all reversed when no axes given)."""
        ax: Optional[Tuple[int, ...]] = axes if axes else None
        if ax is not None and len(ax) == 1 and isinstance(ax[0], (tuple, list)):
            ax = tuple(ax[0])
        data = self.data.transpose(ax)

        def backward_fn(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if ax is None:
                self._accumulate_grad(grad.transpose())
            else:
                inverse = np.argsort(ax)
                self._accumulate_grad(grad.transpose(inverse))

        attrs = {"axes": ax} if _tracer is not None else None
        return Tensor._from_op(data, (self,), backward_fn, "transpose", attrs)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        basic = _is_basic_index(index)

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                if basic:
                    # Basic (slice/int/ellipsis) indexing selects each
                    # element at most once, so a plain in-place add is
                    # correct and much faster than ``np.add.at`` — this
                    # is the hot path of the unrolled filter recurrence.
                    full[index] += grad
                else:
                    np.add.at(full, index, grad)
                self._accumulate_grad(full)

        attrs = {"index": index, "basic": basic} if _tracer is not None else None
        return Tensor._from_op(np.asarray(data), (self,), backward_fn, "getitem", attrs)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        """Remove size-1 axes."""
        new_shape = tuple(
            s
            for i, s in enumerate(self.shape)
            if not (s == 1 and (axis is None or i == axis or i == axis + self.ndim))
        )
        return self.reshape(new_shape)

    def unsqueeze(self, axis: int) -> "Tensor":
        """Insert a size-1 axis at ``axis``."""
        new_shape = list(self.shape)
        if axis < 0:
            axis += self.ndim + 1
        new_shape.insert(axis, 1)
        return self.reshape(tuple(new_shape))

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable, return plain numpy bool arrays)
    # ------------------------------------------------------------------

    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)
