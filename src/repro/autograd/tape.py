"""Tape compiler: trace-once/replay execution for the autograd engine.

The interpreted engine (:mod:`repro.autograd.tensor`) rebuilds an
identical Python graph — one ``Tensor`` node and one backward closure
per op — on every training step.  For the full-batch ADAPT-pNC
objective the op *sequence* is a pure function of the input signature
(shapes, dtype, precision policy, backend switches), so this module
captures it once and replays it as a flat loop:

* :class:`TapeCapture` is a tracer hook (installed via
  :func:`tracing`) that records every ``Tensor._from_op`` call — op
  id, parent/output tensors, non-tensor attrs — plus the *dynamic
  leaves*: arrays that must be recomputed per replay (Monte-Carlo
  variation draws, sign masks of updated parameters), registered with
  :func:`mark_dynamic` / :func:`dynamic` together with a provider
  callable that re-derives them.
* :class:`CompiledTape` lowers a capture to slot-indexed forward and
  backward closure lists over preallocated arena buffers — no Tensor
  allocation, no graph walk, in-place ``out=`` writes for elementwise
  ops — with peephole fusion for the hot chains (crossbar
  ``matmul→add``, the ptanh ``sub→mul→tanh→mul→add`` ladder, loss
  ``sub→square→mean`` reductions) and dead-gradient elimination that
  drops VJP entries whose inputs do not require grad.
* :class:`TapeCache` keys compiled tapes by caller-built signature
  tuples; an unsupported op or a failed bit-equality self-check marks
  the signature ``FAILED`` so callers permanently fall back to the
  interpreted oracle for it.

Bit-equality contract: replaying a compiled tape produces the same
forward bits as the interpreted engine (elementwise ufuncs with
``out=`` and commutative reorders only; ops with value-dependent fast
paths, e.g. ``**``, keep their original spelling).  Every compile ends
with a self-check replay against the recorded arrays; any mismatch
raises :class:`TapeError` and the signature falls back.  Backward
replays mirror each op's interpreted VJP and are tolerance-equal (the
loss value, not the gradients, is the bit-equal oracle surface, as
with ``scan_backend``/``mc_backend``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..telemetry.gauges import Gauge, gauges
from . import tensor as _tensor
from .function import FunctionContext
from .tensor import Tensor, _unbroadcast

__all__ = [
    "TapeError",
    "TapeCapture",
    "CompiledTape",
    "TapeCache",
    "TapeCounters",
    "tape_counters",
    "tracing",
    "active_capture",
    "mark_dynamic",
    "dynamic",
]


class TapeError(RuntimeError):
    """A capture cannot be compiled or replayed faithfully.

    Raised on unsupported ops, stale detached constants, tag/provider
    mismatches and self-check failures.  Callers treat it as "fall
    back to the interpreted engine", never as a training error.
    """


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------


class TapeCounters:
    """Aggregate counters for tape capture/replay (``tape.*`` gauges).

    Mirrors :class:`repro.utils.timing.MCCounters`: each dimension is a
    :class:`repro.telemetry.Gauge` and the process-wide instance
    (:data:`tape_counters`) registers its :meth:`snapshot` in the shared
    gauge registry under ``"tape"`` so runs, ``runs show`` and the
    benches all read one sink.
    """

    def __init__(self) -> None:
        self._build = Gauge()  # "build" key; quantity = traced ops
        self._cache = Gauge()  # hit / miss / fallback keys
        self._replay = Gauge()  # forward / backward keys
        self._opt = Gauge()  # fused_ops / dead_grad_skips; quantity = count

    # -- recording ------------------------------------------------------

    def record_build(self, seconds: float, ops: int) -> None:
        """Record one trace+compile covering ``ops`` recorded ops."""
        self._build.add("build", seconds, quantity=int(ops))

    def record_cache(self, event: str) -> None:
        """Record a cache lookup outcome (``hit``/``miss``/``fallback``)."""
        self._cache.add(event, 0.0)

    def record_replay(self, phase: str, seconds: float) -> None:
        """Record one replay pass (``phase`` is forward or backward)."""
        self._replay.add(phase, seconds)

    def record_optimization(self, fused_ops: int, dead_grad_skips: int) -> None:
        """Record per-compile peephole-fusion / dead-grad statistics."""
        self._opt.add("fused_ops", 0.0, quantity=int(fused_ops))
        self._opt.add("dead_grad_skips", 0.0, quantity=int(dead_grad_skips))

    # -- aggregate views ------------------------------------------------

    @property
    def traces(self) -> int:
        """Number of captures compiled."""
        return self._build.calls("build")

    @property
    def traced_ops(self) -> int:
        """Total ops across all compiled captures."""
        return self._build.quantity("build")

    @property
    def build_seconds(self) -> float:
        """Total wall-clock spent tracing+compiling."""
        return self._build.seconds("build")

    @property
    def cache_hits(self) -> int:
        """Signature lookups served by a compiled tape."""
        return self._cache.calls("hit")

    @property
    def cache_misses(self) -> int:
        """Signature lookups that triggered a fresh trace."""
        return self._cache.calls("miss")

    @property
    def fallbacks(self) -> int:
        """Lookups (or replays) that fell back to the interpreter."""
        return self._cache.calls("fallback")

    @property
    def replays(self) -> int:
        """Forward replay passes executed."""
        return self._replay.calls("forward")

    @property
    def replay_seconds(self) -> float:
        """Total forward replay wall-clock."""
        return self._replay.seconds("forward")

    @property
    def replay_backward_seconds(self) -> float:
        """Total backward replay wall-clock."""
        return self._replay.seconds("backward")

    @property
    def fused_ops(self) -> int:
        """Peephole-fused op groups across all compiles."""
        return self._opt.quantity("fused_ops")

    @property
    def dead_grad_skips(self) -> int:
        """VJP entries eliminated because inputs need no grad."""
        return self._opt.quantity("dead_grad_skips")

    def reset(self) -> None:
        """Zero every counter (start of an experiment/benchmark)."""
        self._build.reset()
        self._cache.reset()
        self._replay.reset()
        self._opt.reset()

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable view (flushed into run manifests/events)."""
        return {
            "traces": float(self.traces),
            "traced_ops": float(self.traced_ops),
            "build_seconds": self.build_seconds,
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "fallbacks": float(self.fallbacks),
            "replays": float(self.replays),
            "replay_seconds": self.replay_seconds,
            "replay_backward_seconds": self.replay_backward_seconds,
            "fused_ops": float(self.fused_ops),
            "dead_grad_skips": float(self.dead_grad_skips),
        }


#: Process-wide tape counters; registered as the ``"tape"`` gauge.
tape_counters = TapeCounters()
gauges.register("tape", tape_counters.snapshot)


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------


class _Record:
    """One traced ``_from_op`` call (strong refs keep arrays alive)."""

    __slots__ = ("op", "attrs", "out", "parents")

    def __init__(self, op: str, attrs: Optional[dict], out: Tensor, parents: Tuple[Tensor, ...]) -> None:
        self.op = op
        self.attrs = attrs
        self.out = out
        self.parents = parents


class TapeCapture:
    """Records one objective evaluation's op stream and dynamic leaves.

    Install with :func:`tracing`; the instance doubles as the tracer
    callable invoked by ``Tensor._from_op``.  ``input_tags`` name arrays
    that callers rebind at replay (e.g. the training batch);
    ``value_tags`` name intermediate tensors whose replayed values the
    caller wants to read back (e.g. logits for per-draw losses).
    """

    def __init__(self) -> None:
        self.records: List[_Record] = []
        self.providers: List[Tuple[Callable[[], np.ndarray], np.ndarray]] = []
        self.provider_index: Dict[int, int] = {}
        self.input_tags: Dict[str, np.ndarray] = {}
        self.value_tags: Dict[str, Tensor] = {}

    def __call__(self, out: Tensor, parents: Tuple[Tensor, ...], op: str, attrs: Optional[dict]) -> None:
        """Tracer hook: record one op."""
        self.records.append(_Record(op, attrs, out, parents))

    def add_provider(self, array: np.ndarray, provider: Callable[[], np.ndarray]) -> None:
        """Register ``array`` as dynamic, re-derived by ``provider``."""
        self.provider_index[id(array)] = len(self.providers)
        self.providers.append((provider, array))

    def tag_input(self, name: str, array: np.ndarray) -> None:
        """Name an array the caller will rebind on every replay."""
        self.input_tags[name] = np.asarray(array)

    def tag_value(self, name: str, tensor: Tensor) -> None:
        """Name a traced tensor whose replayed value is read back."""
        self.value_tags[name] = tensor


#: Capture currently recording (mirrors the installed tracer).
_active_capture: Optional[TapeCapture] = None


def active_capture() -> Optional[TapeCapture]:
    """Return the capture currently recording, if any."""
    return _active_capture


def mark_dynamic(array: np.ndarray, provider: Callable[[], np.ndarray]) -> np.ndarray:
    """Mark ``array`` as a per-replay dynamic leaf; returns it unchanged.

    No-op unless a capture is recording, so producers (variation
    samplers, crossbar sign masks) can call it unconditionally.
    ``provider`` must re-derive the array — including consuming RNG
    streams in the same order — when the tape replays.
    """
    if _active_capture is not None:
        _active_capture.add_provider(array, provider)
    return array


def dynamic(provider: Callable[[], np.ndarray]) -> np.ndarray:
    """Evaluate ``provider()`` now and mark its result dynamic."""
    return mark_dynamic(provider(), provider)


@contextmanager
def tracing(capture: TapeCapture):
    """Install ``capture`` as the engine tracer for the with-block."""
    global _active_capture
    if _tensor.get_tracer() is not None:
        raise TapeError("tape captures cannot nest")
    _tensor.set_tracer(capture)
    _active_capture = capture
    try:
        yield capture
    finally:
        _tensor.set_tracer(None)
        _active_capture = None


# ----------------------------------------------------------------------
# Compiled tape
# ----------------------------------------------------------------------

#: Ops the compiler can lower (everything else falls back).
_SUPPORTED_OPS = frozenset(
    {
        "add", "sub", "mul", "div", "neg", "pow", "matmul",
        "exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs", "clip",
        "sum", "mean", "max", "reshape", "swapaxes", "transpose",
        "getitem", "stack", "concat", "detach_max",
    }
)

_BINARY_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
}

_UNARY_UFUNCS = {
    "neg": np.negative,
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "tanh": np.tanh,
    "abs": np.abs,
}


class _Node:
    """One compiled step: a single op or a peephole-fused group."""

    __slots__ = (
        "op", "attrs", "out", "ins", "out_shape", "out_dtype",
        "in_shapes", "in_dtypes", "needs", "run_backward", "ctx",
        "extra", "check_slots", "scan_saved", "scan_backward",
    )

    def __init__(self, op: str, attrs: Optional[dict], out: int, ins: Tuple[int, ...],
                 out_shape: Tuple[int, ...], out_dtype, in_shapes, in_dtypes) -> None:
        self.op = op
        self.attrs = attrs
        self.out = out
        self.ins = ins
        self.out_shape = out_shape
        self.out_dtype = out_dtype
        self.in_shapes = in_shapes
        self.in_dtypes = in_dtypes
        self.needs: Tuple[bool, ...] = ()
        self.run_backward = False
        self.ctx: Optional[FunctionContext] = None
        self.extra: Optional[dict] = None
        self.check_slots: Tuple[int, ...] = (out,)
        #: Saved forward values / specialized adjoint of the dedicated
        #: FilterScan replay kernel (None for every other op).
        self.scan_saved = None
        self.scan_backward: Optional[Callable[[], None]] = None


class CompiledTape:
    """A capture lowered to flat forward/backward closure lists.

    Slots are SSA: every traced tensor maps to one index in the value
    table ``_vals``; each is written exactly once per replay, so the
    peephole scheduler may sink fused producers to their consumer's
    position without hazards.  Elementwise outputs write into arena
    buffers allocated once at compile; view ops and reductions allocate
    fresh (matching the interpreted engine's arithmetic exactly).
    """

    def __init__(self, capture: TapeCapture, output: Tensor) -> None:
        start = time.perf_counter()
        self._capture = capture
        self._build(capture, output)
        self._self_check()
        tape_counters.record_build(time.perf_counter() - start, len(capture.records))

    # -- compilation ----------------------------------------------------

    def _build(self, capture: TapeCapture, output: Tensor) -> None:
        if not capture.records:
            raise TapeError("empty capture: no ops were traced")

        slot_of: Dict[int, int] = {}
        recorded: List[np.ndarray] = []
        req: List[bool] = []
        # (slot, kind, payload, leaf_tensor); kind in static/provider/input
        leaves: List[Tuple[int, str, object, Tensor]] = []
        produced_data: Dict[int, int] = {}
        nodes: List[_Node] = []
        input_tag_ids = {id(arr): name for name, arr in capture.input_tags.items()}

        def new_slot(tensor: Tensor) -> int:
            slot = len(recorded)
            slot_of[id(tensor)] = slot
            recorded.append(tensor.data)
            req.append(tensor.requires_grad)
            return slot

        for rec in capture.records:
            for p in rec.parents:
                if id(p) in slot_of:
                    continue
                slot = new_slot(p)
                did = id(p.data)
                if did in capture.provider_index:
                    leaves.append((slot, "provider", capture.provider_index[did], p))
                elif did in input_tag_ids:
                    leaves.append((slot, "input", input_tag_ids[did], p))
                elif did in produced_data:
                    raise TapeError(
                        f"leaf aliases the output of traced op "
                        f"#{produced_data[did]} (stale detached constant)"
                    )
                else:
                    leaves.append((slot, "static", None, p))
            if id(rec.out) in slot_of:
                raise TapeError(f"tensor produced twice (op {rec.op!r})")
            if rec.attrs is not None and "function" in rec.attrs:
                pass  # generic Function op, always lowerable
            elif rec.op not in _SUPPORTED_OPS:
                raise TapeError(f"unsupported op {rec.op!r}")
            out_slot = new_slot(rec.out)
            produced_data[id(rec.out.data)] = out_slot
            nodes.append(
                _Node(
                    rec.op,
                    rec.attrs,
                    out_slot,
                    tuple(slot_of[id(p)] for p in rec.parents),
                    rec.out.data.shape,
                    rec.out.data.dtype,
                    tuple(p.data.shape for p in rec.parents),
                    tuple(p.data.dtype for p in rec.parents),
                )
            )

        if id(output) not in slot_of:
            raise TapeError("output tensor was not produced under this capture")
        self._out_slot = slot_of[id(output)]
        self._recorded = recorded
        self._req = req
        self._leaves = leaves
        self._providers = capture.providers
        self._value_slots: Dict[str, int] = {}
        for name, tensor in capture.value_tags.items():
            if id(tensor) not in slot_of:
                raise TapeError(f"value tag {name!r} was not traced")
            self._value_slots[name] = slot_of[id(tensor)]

        protected = {self._out_slot} | set(self._value_slots.values())
        bw_rank = self._interpreted_backward_order(nodes, req)
        nodes, fused = self._fuse(nodes, protected)
        self._nodes = nodes

        dead_skips = self._mark_backward(nodes)
        tape_counters.record_optimization(fused, dead_skips)

        self._vals: List[np.ndarray] = list(recorded)
        self._static_leaves = [(s, t) for s, kind, _p, t in leaves if kind == "static"]
        self._provider_slots = [(s, p) for s, kind, p, _t in leaves if kind == "provider"]
        self._input_slots = [(s, p) for s, kind, p, _t in leaves if kind == "input"]
        self.grad_leaves = [
            (s, t) for s, _kind, _p, t in leaves if t.requires_grad
        ]

        # Grad arenas for every slot a backward step may touch.
        self._gbuf: Dict[int, np.ndarray] = {}
        grad_slots = {self._out_slot}
        for node in nodes:
            if node.run_backward:
                grad_slots.add(node.out)
                for s, need in zip(node.ins, node.needs):
                    if need:
                        grad_slots.add(s)
        for s in grad_slots:
            self._gbuf[s] = np.empty(recorded[s].shape, dtype=recorded[s].dtype)
        self._gset = bytearray(len(recorded))

        self._forward_steps = [self._compile_forward(n) for n in nodes]
        # Backward steps fire in the interpreted engine's reverse-topo
        # processing order (not reverse forward order): when a slot has
        # many consumers — the scan coefficient feeding every timestep —
        # float accumulation order decides the last ulp, and the oracle
        # contract demands bit-equality under float64.
        bw_nodes = sorted(
            (n for n in nodes if n.run_backward),
            key=lambda n: bw_rank.get(n.out, len(bw_rank)),
        )
        self._backward_steps = [self._compile_backward(n) for n in bw_nodes]

    def _fuse(self, nodes: List[_Node], protected: set) -> Tuple[List[_Node], int]:
        """Peephole pass: collapse hot chains into single fused steps.

        Patterns (producers sink to the consumer's position — safe
        because slots are SSA and interior outputs are single-consumer):

        * ``matmul → add``  (crossbar weight product + bias add)
        * ``sub → mul → tanh → mul → add``  (the ptanh ladder)
        * ``sub → square → mean``  (MSE-style loss reduction; square is
          ``mul(d, d)`` or ``pow 2``)
        """
        producer: Dict[int, int] = {n.out: i for i, n in enumerate(nodes)}
        uses: Dict[int, int] = {}
        consumers: Dict[int, List[int]] = {}
        for i, n in enumerate(nodes):
            for s in n.ins:
                uses[s] = uses.get(s, 0) + 1
                consumers.setdefault(s, []).append(i)
        removed = [False] * len(nodes)
        fused = 0

        def interior(slot: int, expected_uses: int = 1) -> bool:
            return uses.get(slot, 0) == expected_uses and slot not in protected

        def live(idx: Optional[int], op: str) -> bool:
            return idx is not None and not removed[idx] and nodes[idx].op == op

        # --- ptanh ladder: sub -> mul -> tanh -> mul -> add -----------
        for j, tanh in enumerate(nodes):
            if tanh.op != "tanh" or removed[j]:
                continue
            s2 = tanh.ins[0]
            i_m1 = producer.get(s2)
            if not live(i_m1, "mul") or not interior(s2):
                continue
            m1 = nodes[i_m1]
            i_sub = s1 = None
            for side in (0, 1):
                cand = producer.get(m1.ins[side])
                if live(cand, "sub") and interior(m1.ins[side]):
                    i_sub, s1 = cand, m1.ins[side]
                    break
            if i_sub is None:
                continue
            s3 = tanh.out
            if not interior(s3):
                continue
            i_m2 = consumers[s3][0]
            m2 = nodes[i_m2]
            if removed[i_m2] or m2.op != "mul" or s3 not in m2.ins or m2.ins[0] == m2.ins[1]:
                continue
            s4 = m2.out
            if not interior(s4):
                continue
            i_add = consumers[s4][0]
            addn = nodes[i_add]
            if removed[i_add] or addn.op != "add" or s4 not in addn.ins:
                continue
            sub = nodes[i_sub]
            x_s, e3 = sub.ins
            e4 = m1.ins[1] if m1.ins[0] == s1 else m1.ins[0]
            eta2 = m2.ins[1] if m2.ins[0] == s3 else m2.ins[0]
            eta1 = addn.ins[1] if addn.ins[0] == s4 else addn.ins[0]
            fnode = _Node(
                "fused_ptanh", None, addn.out, (x_s, e3, e4, eta2, eta1),
                addn.out_shape, addn.out_dtype,
                (sub.in_shapes[0], sub.in_shapes[1],
                 self._shape_of(m1, e4), self._shape_of(m2, eta2),
                 self._shape_of(addn, eta1)),
                (sub.in_dtypes[0], sub.in_dtypes[1],
                 self._dtype_of(m1, e4), self._dtype_of(m2, eta2),
                 self._dtype_of(addn, eta1)),
            )
            fnode.extra = {
                "sub": sub, "m1": m1, "tanh": tanh, "m2": m2, "add": addn,
                "s1": s1, "s2": s2, "s3": s3, "s4": s4,
            }
            fnode.check_slots = (s1, s2, s3, s4, addn.out)
            for i in (i_sub, i_m1, j, i_m2):
                removed[i] = True
            nodes[i_add] = fnode
            fused += 1

        # --- crossbar product: matmul -> add --------------------------
        for j, addn in enumerate(nodes):
            if addn.op != "add" or removed[j]:
                continue
            for side in (0, 1):
                s_m = addn.ins[side]
                i_mm = producer.get(s_m)
                if not live(i_mm, "matmul") or not interior(s_m):
                    continue
                mm = nodes[i_mm]
                if len(mm.in_shapes[0]) < 2 or len(mm.in_shapes[1]) < 2:
                    continue  # 1-D matmul VJPs special-case; keep unfused
                c = addn.ins[1 - side]
                fnode = _Node(
                    "fused_matmul_add", None, addn.out,
                    (mm.ins[0], mm.ins[1], c),
                    addn.out_shape, addn.out_dtype,
                    (mm.in_shapes[0], mm.in_shapes[1], self._shape_of(addn, c)),
                    (mm.in_dtypes[0], mm.in_dtypes[1], self._dtype_of(addn, c)),
                )
                fnode.extra = {"mm": mm, "add": addn, "m_slot": s_m, "m_side": side}
                fnode.check_slots = (s_m, addn.out)
                removed[i_mm] = True
                nodes[j] = fnode
                fused += 1
                break

        # --- loss reduction: sub -> square -> mean --------------------
        for j, mn in enumerate(nodes):
            if mn.op != "mean" or removed[j]:
                continue
            sq = mn.ins[0]
            i_sq = producer.get(sq)
            if i_sq is None or removed[i_sq] or not interior(sq):
                continue
            sqn = nodes[i_sq]
            if sqn.op == "mul" and sqn.ins[0] == sqn.ins[1]:
                kind, d_uses = "mul", 2
            elif sqn.op == "pow" and sqn.attrs and sqn.attrs.get("exponent") == 2.0:
                kind, d_uses = "pow", 1
            else:
                continue
            d = sqn.ins[0]
            i_sub = producer.get(d)
            if not live(i_sub, "sub") or not interior(d, expected_uses=d_uses):
                continue
            sub = nodes[i_sub]
            fnode = _Node(
                "fused_mse", mn.attrs, mn.out, sub.ins,
                mn.out_shape, mn.out_dtype, sub.in_shapes, sub.in_dtypes,
            )
            fnode.extra = {"sub": sub, "sq": sqn, "mean": mn, "kind": kind,
                           "d": d, "sq_slot": sq}
            fnode.check_slots = (d, sq, mn.out)
            removed[i_sub] = True
            removed[i_sq] = True
            nodes[j] = fnode
            fused += 1

        return [n for i, n in enumerate(nodes) if not removed[i]], fused

    @staticmethod
    def _shape_of(node: _Node, slot: int) -> Tuple[int, ...]:
        return node.in_shapes[node.ins.index(slot)]

    @staticmethod
    def _dtype_of(node: _Node, slot: int):
        return node.in_dtypes[node.ins.index(slot)]

    def _interpreted_backward_order(
        self, nodes: List[_Node], req: List[bool]
    ) -> Dict[int, int]:
        """Processing rank per out-slot matching ``Tensor.backward``.

        Simulates the interpreted engine's iterative DFS over the
        pre-fusion graph — same stack discipline, same grad-bearing
        parent pruning — so a tape replay accumulates multi-consumer
        gradients in the identical order and stays bit-equal even where
        float addition is non-associative.
        """
        producer: Dict[int, _Node] = {n.out: n for n in nodes}
        topo: List[int] = []
        visited: set = set()
        stack: List[Tuple[int, bool]] = [(self._out_slot, False)]
        while stack:
            slot, processed = stack.pop()
            if processed:
                topo.append(slot)
                continue
            if slot in visited:
                continue
            visited.add(slot)
            stack.append((slot, True))
            node = producer.get(slot)
            if node is not None:
                for s in node.ins:
                    if req[s] and s not in visited:
                        stack.append((s, False))
        return {slot: i for i, slot in enumerate(reversed(topo))}

    def _mark_backward(self, nodes: List[_Node]) -> int:
        """Dead-gradient elimination: keep only loss-relevant VJPs.

        A node's backward runs iff its output both requires grad (the
        interpreted engine's differentiability) and is reachable from
        the tape output along grad-bearing edges.  Returns the number
        of per-input VJP computations eliminated.
        """
        req = self._req
        relevant = {self._out_slot}
        skips = 0
        for node in reversed(nodes):
            node.needs = tuple(req[s] for s in node.ins)
            node.run_backward = node.out in relevant and req[node.out]
            if node.run_backward:
                for s, need in zip(node.ins, node.needs):
                    if need:
                        relevant.add(s)
                    else:
                        skips += 1
            elif req[node.out]:
                skips += len(node.ins)
        return skips

    # -- forward kernels ------------------------------------------------

    def _arena(self, node: _Node) -> np.ndarray:
        return np.empty(node.out_shape, dtype=node.out_dtype)

    def _compile_forward(self, node: _Node) -> Callable[[], None]:
        """Lower one node to a closure over the value table.

        Elementwise ops write into a preallocated arena via ``out=``
        (bit-equal to fresh allocation); ops with value-dependent numpy
        fast paths (``**``) or shape-changing outputs keep the
        interpreted spelling and allocate fresh.
        """
        vals = self._vals
        op, o, ins, attrs = node.op, node.out, node.ins, node.attrs

        if attrs is not None and "function" in attrs:
            cls, kwargs, needs = attrs["function"], attrs["kwargs"], node.needs
            if cls.__name__ == "FilterScan" and not kwargs:
                kernel = self._compile_filter_scan(node)
                if kernel is not None:
                    return kernel

            def run_function(node=node, cls=cls, kwargs=kwargs, needs=needs, ins=ins, o=o):
                ctx = FunctionContext()
                ctx.needs_input_grad = needs
                vals[o] = np.asarray(cls.forward(ctx, *(vals[s] for s in ins), **kwargs))
                node.ctx = ctx

            return run_function

        if op in _BINARY_UFUNCS:
            ufunc, buf, (a, b) = _BINARY_UFUNCS[op], self._arena(node), ins

            def run_binary(ufunc=ufunc, a=a, b=b, o=o, buf=buf):
                ufunc(vals[a], vals[b], out=buf)
                vals[o] = buf

            return run_binary

        if op in _UNARY_UFUNCS:
            ufunc, buf, a = _UNARY_UFUNCS[op], self._arena(node), ins[0]

            def run_unary(ufunc=ufunc, a=a, o=o, buf=buf):
                ufunc(vals[a], out=buf)
                vals[o] = buf

            return run_unary

        if op == "sigmoid":
            buf, a = self._arena(node), ins[0]

            def run_sigmoid(a=a, o=o, buf=buf):
                # 1 / (1 + exp(-x)), all in one arena (elementwise
                # same-index reads make in-place chaining safe).
                np.negative(vals[a], out=buf)
                np.exp(buf, out=buf)
                np.add(buf, 1.0, out=buf)
                np.divide(1.0, buf, out=buf)
                vals[o] = buf

            return run_sigmoid

        if op == "relu":
            buf, a = self._arena(node), ins[0]

            def run_relu(a=a, o=o, buf=buf):
                v = vals[a]
                np.multiply(v, v > 0, out=buf)
                vals[o] = buf

            return run_relu

        if op == "clip":
            buf, a = self._arena(node), ins[0]
            low, high = attrs["low"], attrs["high"]

            def run_clip(a=a, o=o, buf=buf, low=low, high=high):
                np.clip(vals[a], low, high, out=buf)
                vals[o] = buf

            return run_clip

        if op == "pow":
            a, exponent = ins[0], attrs["exponent"]

            def run_pow(a=a, o=o, exponent=exponent):
                # Keep the operator form: numpy routes small scalar
                # exponents through square/sqrt fast paths that
                # np.power(..., out=) would not reproduce bit-exactly.
                vals[o] = vals[a] ** exponent

            return run_pow

        if op == "matmul":
            a, b = ins

            def run_matmul(a=a, b=b, o=o):
                vals[o] = vals[a] @ vals[b]

            return run_matmul

        if op in ("sum", "mean", "max"):
            a = ins[0]
            axis, keepdims = attrs["axis"], attrs["keepdims"]
            method = {"sum": "sum", "mean": "mean", "max": "max"}[op]

            def run_reduce(a=a, o=o, axis=axis, keepdims=keepdims, method=method):
                vals[o] = np.asarray(getattr(vals[a], method)(axis=axis, keepdims=keepdims))

            return run_reduce

        if op == "detach_max":
            a, axis = ins[0], attrs["axis"]

            def run_detach_max(a=a, o=o, axis=axis):
                vals[o] = np.asarray(vals[a].max(axis=axis, keepdims=True))

            return run_detach_max

        if op == "reshape":
            a, shape = ins[0], attrs["shape"]

            def run_reshape(a=a, o=o, shape=shape):
                vals[o] = vals[a].reshape(shape)

            return run_reshape

        if op == "swapaxes":
            a, ax1, ax2 = ins[0], attrs["axis1"], attrs["axis2"]

            def run_swapaxes(a=a, o=o, ax1=ax1, ax2=ax2):
                vals[o] = np.swapaxes(vals[a], ax1, ax2)

            return run_swapaxes

        if op == "transpose":
            a, axes = ins[0], attrs["axes"]

            def run_transpose(a=a, o=o, axes=axes):
                vals[o] = vals[a].transpose(axes)

            return run_transpose

        if op == "getitem":
            a, index = ins[0], attrs["index"]

            def run_getitem(a=a, o=o, index=index):
                vals[o] = np.asarray(vals[a][index])

            return run_getitem

        if op == "stack":
            buf, axis = self._arena(node), attrs["axis"]

            def run_stack(ins=ins, o=o, axis=axis, buf=buf):
                np.stack([vals[s] for s in ins], axis=axis, out=buf)
                vals[o] = buf

            return run_stack

        if op == "concat":
            buf, axis = self._arena(node), attrs["axis"]

            def run_concat(ins=ins, o=o, axis=axis, buf=buf):
                np.concatenate([vals[s] for s in ins], axis=axis, out=buf)
                vals[o] = buf

            return run_concat

        if op == "fused_matmul_add":
            x = node.extra
            mm, m_side = x["mm"], x["m_side"]
            mbuf = np.empty(mm.out_shape, dtype=mm.out_dtype)
            obuf = self._arena(node)
            a, b, c = ins
            m_slot = x["m_slot"]

            def run_matmul_add(a=a, b=b, c=c, o=o, m_slot=m_slot, m_side=m_side, mbuf=mbuf, obuf=obuf):
                np.matmul(vals[a], vals[b], out=mbuf)
                vals[m_slot] = mbuf
                if m_side == 0:
                    np.add(mbuf, vals[c], out=obuf)
                else:
                    np.add(vals[c], mbuf, out=obuf)
                vals[o] = obuf

            return run_matmul_add

        if op == "fused_ptanh":
            x = node.extra
            sub, m1, tanh_n, m2, addn = x["sub"], x["m1"], x["tanh"], x["m2"], x["add"]
            bufs = {
                x["s1"]: np.empty(sub.out_shape, dtype=sub.out_dtype),
                x["s2"]: np.empty(m1.out_shape, dtype=m1.out_dtype),
                x["s3"]: np.empty(tanh_n.out_shape, dtype=tanh_n.out_dtype),
                x["s4"]: np.empty(m2.out_shape, dtype=m2.out_dtype),
                o: self._arena(node),
            }

            def run_ptanh(sub=sub, m1=m1, tanh_n=tanh_n, m2=m2, addn=addn, bufs=bufs, o=o):
                # Replay each member with its original operand order so
                # the arithmetic matches the interpreted chain bit-for-bit.
                b = bufs[sub.out]
                np.subtract(vals[sub.ins[0]], vals[sub.ins[1]], out=b)
                vals[sub.out] = b
                b = bufs[m1.out]
                np.multiply(vals[m1.ins[0]], vals[m1.ins[1]], out=b)
                vals[m1.out] = b
                b = bufs[tanh_n.out]
                np.tanh(vals[tanh_n.ins[0]], out=b)
                vals[tanh_n.out] = b
                b = bufs[m2.out]
                np.multiply(vals[m2.ins[0]], vals[m2.ins[1]], out=b)
                vals[m2.out] = b
                b = bufs[o]
                np.add(vals[addn.ins[0]], vals[addn.ins[1]], out=b)
                vals[o] = b

            return run_ptanh

        if op == "fused_mse":
            x = node.extra
            sub, sqn, mn, kind = x["sub"], x["sq"], x["mean"], x["kind"]
            d, sq_slot = x["d"], x["sq_slot"]
            dbuf = np.empty(sub.out_shape, dtype=sub.out_dtype)
            axis, keepdims = mn.attrs["axis"], mn.attrs["keepdims"]

            def run_mse(sub=sub, d=d, sq_slot=sq_slot, o=o, kind=kind,
                        dbuf=dbuf, axis=axis, keepdims=keepdims):
                np.subtract(vals[sub.ins[0]], vals[sub.ins[1]], out=dbuf)
                vals[d] = dbuf
                if kind == "mul":
                    vals[sq_slot] = dbuf * dbuf
                else:
                    vals[sq_slot] = dbuf ** 2.0
                vals[o] = np.asarray(vals[sq_slot].mean(axis=axis, keepdims=keepdims))

            return run_mse

        raise TapeError(f"no forward kernel for op {op!r}")

    def _compile_filter_scan(self, node: _Node) -> Optional[Callable[[], None]]:
        """Specialized FilterScan replay pair (forward + adjoint).

        Re-implements :class:`~repro.autograd.function.FilterScan` with
        every shape-derived decision (time-major permutation, broadcast
        shapes, densification, the caller-facing moveaxis view) resolved
        at compile time and every buffer (state table, densified
        coefficient, scratch) preallocated as a tape arena.  The numpy
        call sequence is identical to the generic kernel, so replays
        stay bit-equal — and the compile-time self-check enforces that
        before the tape is trusted.  Returns ``None`` when the call
        doesn't match the layout this kernel assumes (mixed dtypes,
        unexpected coefficient rank); the generic ``run_function`` path
        then handles it.
        """
        vals, gbuf, gset, acc = self._vals, self._gbuf, self._gset, self._acc
        o, ins = node.out, node.ins
        x_shape, a_shape, b_shape, v0_shape = node.in_shapes
        dtype = node.out_dtype
        if any(dt != dtype for dt in node.in_dtypes):
            return None
        if len(a_shape) == 2:
            if len(b_shape) != 2:
                return None
            a_e_shape = (a_shape[0], 1, a_shape[1])
            b_e_shape = (b_shape[0], 1, b_shape[1])
        else:
            a_e_shape, b_e_shape = a_shape, b_shape
        steps = x_shape[-2]
        step_shape = np.broadcast_shapes(
            a_e_shape, b_e_shape, v0_shape, x_shape[:-2] + x_shape[-1:]
        )
        x_nd = len(x_shape)
        # moveaxis(x, -2, 0) as a precomputed transpose permutation.
        perm = (x_nd - 2,) + tuple(i for i in range(x_nd) if i != x_nd - 2)
        x_tm_shape = (x_shape[-2],) + x_shape[:-2] + x_shape[-1:]
        pad = 1 + len(step_shape) - len(x_tm_shape)
        x_tm_e_shape = (
            x_tm_shape[:1] + (1,) * pad + x_tm_shape[1:] if pad > 0 else x_tm_shape
        )
        densify_a = a_e_shape != step_shape
        out_shape = node.out_shape
        out_nd = len(out_shape)
        gperm = (out_nd - 2,) + tuple(i for i in range(out_nd) if i != out_nd - 2)

        buf = np.empty((steps,) + step_shape, dtype=dtype)
        out_view = np.moveaxis(buf, 0, -2)
        tmp = np.empty(step_shape, dtype=dtype)
        a_d_buf = np.empty(step_shape, dtype=dtype) if densify_a else None
        x_cbuf = np.empty(x_tm_shape, dtype=dtype)
        xi, ai, bi, vi = ins
        b_lead_shape = (1,) + b_e_shape

        def run_filter_scan():
            xv = vals[xi]
            x_tm = xv.transpose(perm)
            if not x_tm.flags.c_contiguous:
                np.copyto(x_cbuf, x_tm)
                x_tm = x_cbuf
            x_tm_e = x_tm.reshape(x_tm_e_shape)
            av, bv, v0v = vals[ai], vals[bi], vals[vi]
            a_e = av.reshape(a_e_shape)
            np.multiply(bv.reshape(b_lead_shape), x_tm_e, out=buf)
            if densify_a:
                np.copyto(a_d_buf, a_e)
                a_d = a_d_buf
            else:
                a_d = a_e
            v = v0v
            for k in range(steps):
                vk = buf[k]
                np.multiply(a_d, v, out=tmp)
                vk += tmp
                v = vk
            node.scan_saved = (x_tm_e, av, v0v)
            vals[o] = out_view

        need_x, need_a, need_b, need_v0 = node.needs
        G = np.empty((steps,) + step_shape, dtype=dtype)
        gtm_buf = np.empty((steps,) + step_shape, dtype=dtype)
        gx_buf = np.empty((steps,) + step_shape, dtype=dtype) if need_x else None
        gx_view = np.moveaxis(gx_buf, 0, -2) if need_x else None
        x_bcast = x_tm_e_shape[1:] != x_shape[:-2] + x_shape[-1:] or pad > 0

        def back_filter_scan():
            if not gset[o]:
                return
            x_tm_e, av, v0v = node.scan_saved
            a_e = av.reshape(a_e_shape)
            bv = vals[bi]
            gt = gbuf[o].transpose(gperm)
            if gt.flags.c_contiguous:
                grad_tm = gt
            else:
                np.copyto(gtm_buf, gt)
                grad_tm = gtm_buf
            a_d = a_d_buf if densify_a else a_e
            g = np.zeros(step_shape, dtype=dtype)
            for k in range(steps - 1, -1, -1):
                np.multiply(a_d, g, out=tmp)
                g = G[k]
                np.add(grad_tm[k], tmp, out=g)
            if need_x:
                np.multiply(bv.reshape(b_lead_shape), G, out=gx_buf)
                gx = gx_view if not x_bcast else _unbroadcast(gx_view, x_shape)
                acc(xi, gx)
            if need_a:
                ga = np.einsum("k...,k...->...", G[1:], buf[:-1]) + G[0] * v0v
                acc(ai, _unbroadcast(ga, a_e_shape).reshape(a_shape))
            if need_b:
                gb = np.einsum("k...,k...->...", G, x_tm_e)
                acc(bi, _unbroadcast(gb, b_e_shape).reshape(b_shape))
            if need_v0:
                acc(vi, _unbroadcast(a_e * G[0], v0_shape))

        node.scan_backward = back_filter_scan
        return run_filter_scan

    # -- backward kernels -----------------------------------------------

    def _acc(self, slot: int, g: np.ndarray) -> None:
        """Accumulate ``g`` into the slot's grad arena.

        Copy-on-first-write: VJPs may return views of (or aliases into)
        other gradients — e.g. ``_unbroadcast`` returns its argument
        unchanged when shapes match — so the first accumulation copies
        into the arena exactly like the interpreted
        ``_accumulate_grad``.
        """
        if self._gset[slot]:
            self._gbuf[slot] += g
        else:
            np.copyto(self._gbuf[slot], g)
            self._gset[slot] = 1

    def _compile_backward(self, node: _Node) -> Callable[[], None]:
        """Lower one node's VJP, mirroring the interpreted closures."""
        vals, gbuf, gset, acc = self._vals, self._gbuf, self._gset, self._acc
        op, o, ins, needs, attrs = node.op, node.out, node.ins, node.needs, node.attrs

        if attrs is not None and "function" in attrs:
            if node.scan_backward is not None:
                return node.scan_backward
            cls = attrs["function"]

            def back_function(node=node, cls=cls, ins=ins, needs=needs, o=o,
                              shapes=node.in_shapes, dtypes=node.in_dtypes):
                if not gset[o]:
                    return
                grads = cls.backward(node.ctx, gbuf[o])
                for s, need, g, shape, dtype in zip(ins, needs, grads, shapes, dtypes):
                    if need and g is not None:
                        acc(s, _unbroadcast(np.asarray(g, dtype=dtype), shape))

            return back_function

        a = ins[0]
        sa = node.in_shapes[0]
        # Shapes and dtypes are static per tape, so broadcast reductions
        # and safe in-place destinations are decided here, not per
        # replay.  A first-touch slot of matching shape/dtype receives
        # the VJP product straight from the ufunc (``out=`` writes the
        # identical bits the temp-then-copy interpreted path produces,
        # given equal dtypes) — one allocation and one memory pass saved
        # on almost every step, since SSA slots have a single consumer.
        out_shape, out_dtype = node.out_shape, node.out_dtype

        def _same(i: int) -> bool:
            return (
                node.in_shapes[i] == out_shape
                and node.in_dtypes[i] == out_dtype
            )

        if op in ("add", "sub"):
            b, sb = ins[1], node.in_shapes[1]
            negate = op == "sub"
            same_a, same_b = sa == out_shape, sb == out_shape

            def back_addsub(a=a, b=b, o=o, sa=sa, sb=sb, needs=needs,
                            negate=negate, same_a=same_a, same_b=same_b):
                if not gset[o]:
                    return
                g = gbuf[o]
                if needs[0]:
                    acc(a, g if same_a else _unbroadcast(g, sa))
                if needs[1]:
                    if not negate:
                        acc(b, g if same_b else _unbroadcast(g, sb))
                    elif same_b and not gset[b]:
                        np.negative(g, out=gbuf[b])
                        gset[b] = 1
                    else:
                        acc(b, _unbroadcast(-g, sb))

            return back_addsub

        if op == "mul":
            b, sb = ins[1], node.in_shapes[1]
            uniform = _same(0) and node.in_dtypes[1] == out_dtype
            same_a, same_b = sa == out_shape, sb == out_shape

            def back_mul(a=a, b=b, o=o, sa=sa, sb=sb, needs=needs,
                         uniform=uniform, same_a=same_a, same_b=same_b):
                if not gset[o]:
                    return
                g = gbuf[o]
                if needs[0]:
                    if uniform and same_a and not gset[a]:
                        np.multiply(g, vals[b], out=gbuf[a])
                        gset[a] = 1
                    else:
                        acc(a, _unbroadcast(g * vals[b], sa))
                if needs[1]:
                    if uniform and same_b and not gset[b]:
                        np.multiply(g, vals[a], out=gbuf[b])
                        gset[b] = 1
                    else:
                        acc(b, _unbroadcast(g * vals[a], sb))

            return back_mul

        if op == "div":
            b, sb = ins[1], node.in_shapes[1]
            uniform = _same(0) and node.in_dtypes[1] == out_dtype
            same_a = sa == out_shape

            def back_div(a=a, b=b, o=o, sa=sa, sb=sb, needs=needs,
                         uniform=uniform, same_a=same_a):
                if not gset[o]:
                    return
                g = gbuf[o]
                if needs[0]:
                    if uniform and same_a and not gset[a]:
                        np.divide(g, vals[b], out=gbuf[a])
                        gset[a] = 1
                    else:
                        acc(a, _unbroadcast(g / vals[b], sa))
                if needs[1]:
                    acc(b, _unbroadcast(-g * vals[a] / vals[b] ** 2, sb))

            return back_div

        if op == "neg":

            def back_neg(a=a, o=o):
                if gset[o]:
                    acc(a, -gbuf[o])

            return back_neg

        if op == "pow":
            exponent = attrs["exponent"]

            def back_pow(a=a, o=o, exponent=exponent):
                if gset[o]:
                    acc(a, gbuf[o] * exponent * vals[a] ** (exponent - 1.0))

            return back_pow

        if op == "matmul":
            b, sb = ins[1], node.in_shapes[1]
            a_nd, b_nd = len(sa), len(sb)

            def back_matmul(a=a, b=b, o=o, sa=sa, sb=sb, needs=needs, a_nd=a_nd, b_nd=b_nd):
                if not gset[o]:
                    return
                g = gbuf[o]
                va, vb = vals[a], vals[b]
                if needs[0]:
                    if b_nd == 1:
                        ga = np.multiply.outer(g, vb) if g.ndim else g * vb
                        acc(a, _unbroadcast(np.asarray(ga), sa))
                    else:
                        acc(a, _unbroadcast(g @ np.swapaxes(vb, -1, -2), sa))
                if needs[1]:
                    if a_nd == 1:
                        gb = np.multiply.outer(va, g) if g.ndim else va * g
                        acc(b, _unbroadcast(np.asarray(gb), sb))
                    elif b_nd == 1:
                        gb = np.swapaxes(va, -1, -2) @ g[..., None]
                        acc(b, _unbroadcast(gb[..., 0], sb))
                    else:
                        acc(b, _unbroadcast(np.swapaxes(va, -1, -2) @ g, sb))

            return back_matmul

        if op == "exp":

            def back_exp(a=a, o=o):
                if gset[o]:
                    acc(a, gbuf[o] * vals[o])

            return back_exp

        if op == "log":

            def back_log(a=a, o=o):
                if gset[o]:
                    acc(a, gbuf[o] / vals[a])

            return back_log

        if op == "sqrt":

            def back_sqrt(a=a, o=o):
                if gset[o]:
                    acc(a, gbuf[o] * 0.5 / vals[o])

            return back_sqrt

        if op == "tanh":

            def back_tanh(a=a, o=o):
                if gset[o]:
                    acc(a, gbuf[o] * (1.0 - vals[o] ** 2))

            return back_tanh

        if op == "sigmoid":

            def back_sigmoid(a=a, o=o):
                if gset[o]:
                    acc(a, gbuf[o] * vals[o] * (1.0 - vals[o]))

            return back_sigmoid

        if op == "relu":

            def back_relu(a=a, o=o):
                if gset[o]:
                    acc(a, gbuf[o] * (vals[a] > 0))

            return back_relu

        if op == "abs":

            def back_abs(a=a, o=o):
                if gset[o]:
                    acc(a, gbuf[o] * np.sign(vals[a]))

            return back_abs

        if op == "clip":
            low, high = attrs["low"], attrs["high"]

            def back_clip(a=a, o=o, low=low, high=high):
                if gset[o]:
                    v = vals[a]
                    acc(a, gbuf[o] * ((v >= low) & (v <= high)))

            return back_clip

        if op == "sum":
            axis, keepdims = attrs["axis"], attrs["keepdims"]
            dtype = node.in_dtypes[0]

            def back_sum(a=a, o=o, sa=sa, axis=axis, keepdims=keepdims, dtype=dtype):
                if not gset[o]:
                    return
                g = gbuf[o]
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                acc(a, np.broadcast_to(g, sa).astype(dtype))

            return back_sum

        if op == "mean":
            axis, keepdims = attrs["axis"], attrs["keepdims"]
            dtype = node.in_dtypes[0]
            if axis is None:
                count = int(np.prod(sa)) if sa else 1
            elif isinstance(axis, tuple):
                count = int(np.prod([sa[ax] for ax in axis]))
            else:
                count = sa[axis]

            def back_mean(a=a, o=o, sa=sa, axis=axis, keepdims=keepdims, dtype=dtype, count=count):
                if not gset[o]:
                    return
                g = gbuf[o] / count
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                acc(a, np.broadcast_to(np.asarray(g, dtype=dtype), sa))

            return back_mean

        if op == "max":
            axis, keepdims = attrs["axis"], attrs["keepdims"]
            dtype = node.in_dtypes[0]

            def back_max(a=a, o=o, axis=axis, keepdims=keepdims, dtype=dtype):
                if not gset[o]:
                    return
                g, d = gbuf[o], vals[o]
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                    d = np.expand_dims(d, axis=axis)
                mask = (vals[a] == d).astype(dtype)
                mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                acc(a, mask * g)

            return back_max

        if op == "reshape":

            def back_reshape(a=a, o=o, sa=sa):
                if gset[o]:
                    acc(a, gbuf[o].reshape(sa))

            return back_reshape

        if op == "swapaxes":
            ax1, ax2 = attrs["axis1"], attrs["axis2"]

            def back_swapaxes(a=a, o=o, ax1=ax1, ax2=ax2):
                if gset[o]:
                    acc(a, np.swapaxes(gbuf[o], ax1, ax2))

            return back_swapaxes

        if op == "transpose":
            axes = attrs["axes"]
            inverse = None if axes is None else np.argsort(axes)

            def back_transpose(a=a, o=o, inverse=inverse):
                if gset[o]:
                    g = gbuf[o]
                    acc(a, g.transpose() if inverse is None else g.transpose(inverse))

            return back_transpose

        if op == "getitem":
            index, basic = attrs["index"], attrs["basic"]

            def back_getitem(a=a, o=o, index=index, basic=basic):
                if not gset[o]:
                    return
                full = np.zeros_like(vals[a])
                if basic:
                    full[index] += gbuf[o]
                else:
                    np.add.at(full, index, gbuf[o])
                acc(a, full)

            return back_getitem

        if op == "stack":
            axis = attrs["axis"]

            def back_stack(ins=ins, o=o, axis=axis, needs=needs):
                if not gset[o]:
                    return
                pieces = np.split(gbuf[o], len(ins), axis=axis)
                for s, need, piece in zip(ins, needs, pieces):
                    if need:
                        acc(s, np.squeeze(piece, axis=axis))

            return back_stack

        if op == "concat":
            axis = attrs["axis"]
            sizes = [shape[axis] for shape in node.in_shapes]
            offsets = np.cumsum([0] + sizes)

            def back_concat(ins=ins, o=o, axis=axis, needs=needs, offsets=offsets):
                if not gset[o]:
                    return
                g = gbuf[o]
                for s, need, start, stop in zip(ins, needs, offsets[:-1], offsets[1:]):
                    if need:
                        index = [slice(None)] * g.ndim
                        index[axis] = slice(start, stop)
                        acc(s, g[tuple(index)])

            return back_concat

        if op == "fused_matmul_add":
            x = node.extra
            b, c = ins[1], ins[2]
            sb, sc = node.in_shapes[1], node.in_shapes[2]
            m_shape = x["mm"].out_shape

            def back_matmul_add(a=a, b=b, c=c, o=o, sa=sa, sb=sb, sc=sc,
                                m_shape=m_shape, needs=needs):
                if not gset[o]:
                    return
                g = gbuf[o]
                if needs[2]:
                    acc(c, _unbroadcast(g, sc))
                gm = _unbroadcast(g, m_shape)
                if needs[0]:
                    acc(a, _unbroadcast(gm @ np.swapaxes(vals[b], -1, -2), sa))
                if needs[1]:
                    acc(b, _unbroadcast(np.swapaxes(vals[a], -1, -2) @ gm, sb))

            return back_matmul_add

        if op == "fused_ptanh":
            x = node.extra
            x_s, e3, e4, eta2, eta1 = ins
            s_x, s_e3, s_e4, s_eta2, s_eta1 = node.in_shapes
            s1, s3, s4 = x["s1"], x["s3"], x["s4"]
            s1_shape = x["sub"].out_shape
            s3_shape = x["tanh"].out_shape
            s4_shape = x["m2"].out_shape

            def back_ptanh(x_s=x_s, e3=e3, e4=e4, eta2=eta2, eta1=eta1, o=o,
                           s_x=s_x, s_e3=s_e3, s_e4=s_e4, s_eta2=s_eta2,
                           s_eta1=s_eta1, s1=s1, s3=s3, s4=s4,
                           s1_shape=s1_shape, s3_shape=s3_shape,
                           s4_shape=s4_shape, needs=needs):
                if not gset[o]:
                    return
                g = gbuf[o]
                if needs[4]:
                    acc(eta1, _unbroadcast(g, s_eta1))
                gs4 = _unbroadcast(g, s4_shape)
                s3v = vals[s3]
                if needs[3]:
                    acc(eta2, _unbroadcast(gs4 * s3v, s_eta2))
                gs3 = _unbroadcast(gs4 * vals[eta2], s3_shape)
                gs2 = gs3 * (1.0 - s3v ** 2)
                if needs[2]:
                    acc(e4, _unbroadcast(gs2 * vals[s1], s_e4))
                if needs[0] or needs[1]:
                    gs1 = _unbroadcast(gs2 * vals[e4], s1_shape)
                    if needs[0]:
                        acc(x_s, _unbroadcast(gs1, s_x))
                    if needs[1]:
                        acc(e3, _unbroadcast(-gs1, s_e3))

            return back_ptanh

        if op == "fused_mse":
            x = node.extra
            b, sb = ins[1], node.in_shapes[1]
            kind, d = x["kind"], x["d"]
            sq_shape = x["sq"].out_shape
            dtype = x["sq"].out_dtype
            axis, keepdims = x["mean"].attrs["axis"], x["mean"].attrs["keepdims"]
            exponent = None if kind == "mul" else x["sq"].attrs["exponent"]
            if axis is None:
                count = int(np.prod(sq_shape)) if sq_shape else 1
            elif isinstance(axis, tuple):
                count = int(np.prod([sq_shape[ax] for ax in axis]))
            else:
                count = sq_shape[axis]

            def back_mse(a=a, b=b, o=o, sa=sa, sb=sb, d=d, kind=kind,
                         sq_shape=sq_shape, dtype=dtype, axis=axis,
                         keepdims=keepdims, count=count, exponent=exponent,
                         needs=needs):
                if not gset[o]:
                    return
                g = gbuf[o] / count
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                gsq = np.broadcast_to(np.asarray(g, dtype=dtype), sq_shape)
                dv = vals[d]
                if kind == "mul":
                    gd = gsq * dv
                    gd = gd + gd  # two interpreted accumulations of g*d
                else:
                    gd = gsq * exponent * dv ** (exponent - 1.0)
                if needs[0]:
                    acc(a, _unbroadcast(gd, sa))
                if needs[1]:
                    acc(b, _unbroadcast(-gd, sb))

            return back_mse

        raise TapeError(f"no backward kernel for op {op!r}")

    # -- replay ---------------------------------------------------------

    def replay_forward(
        self, bindings: Optional[Dict[str, np.ndarray]] = None, _stub_providers: bool = False
    ) -> np.ndarray:
        """Run the compiled forward and return the output slot's value.

        ``bindings`` supplies one array per input tag.  Dynamic-leaf
        providers are invoked in their recorded order, so RNG-stream
        consumption matches the interpreted evaluation bit-for-bit;
        ``_stub_providers`` replays the recorded draws instead (the
        compile-time self-check, which must not consume RNG).
        """
        start = time.perf_counter()
        vals = self._vals
        for slot, tensor in self._static_leaves:
            vals[slot] = tensor.data
        if self._providers:
            if _stub_providers:
                for slot, idx in self._provider_slots:
                    vals[slot] = self._providers[idx][1]
            else:
                outs = []
                for provider, rec in self._providers:
                    arr = provider()
                    if arr.shape != rec.shape or arr.dtype != rec.dtype:
                        raise TapeError(
                            f"provider returned {arr.dtype}{arr.shape}, "
                            f"recorded {rec.dtype}{rec.shape}"
                        )
                    outs.append(arr)
                for slot, idx in self._provider_slots:
                    vals[slot] = outs[idx]
        for slot, name in self._input_slots:
            if bindings is None or name not in bindings:
                raise TapeError(f"replay missing binding for input tag {name!r}")
            arr = bindings[name]
            rec = self._recorded[slot]
            if arr.shape != rec.shape or arr.dtype != rec.dtype:
                raise TapeError(
                    f"binding {name!r} is {arr.dtype}{arr.shape}, "
                    f"recorded {rec.dtype}{rec.shape}"
                )
            vals[slot] = arr
        for step in self._forward_steps:
            step()
        tape_counters.record_replay("forward", time.perf_counter() - start)
        return vals[self._out_slot]

    def value(self, name: str) -> np.ndarray:
        """Current replayed value of a tagged intermediate tensor."""
        return self._vals[self._value_slots[name]]

    def replay_backward(
        self,
        seed: Optional[np.ndarray] = None,
        into: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        """Run the compiled backward for the latest forward replay.

        With ``into=None`` the leaf gradients are accumulated straight
        into the captured parameter tensors' ``.grad`` (the training hot
        path).  With a dict, per-slot copies are summed into it instead
        — the sequential-MC path accumulates across draws and applies
        them later via :meth:`apply_accumulated`.
        """
        start = time.perf_counter()
        self._gset[:] = bytes(len(self._gset))
        out_rec = self._recorded[self._out_slot]
        if seed is None:
            g = np.ones_like(out_rec)
        else:
            g = np.broadcast_to(np.asarray(seed, dtype=out_rec.dtype), out_rec.shape).astype(
                out_rec.dtype
            )
        self._acc(self._out_slot, g)
        for step in self._backward_steps:
            step()
        gset, gbuf = self._gset, self._gbuf
        for slot, tensor in self.grad_leaves:
            if not gset[slot]:
                continue
            if into is None:
                # _accumulate_grad copies on first touch, so handing it
                # the reused arena is safe.
                tensor._accumulate_grad(gbuf[slot])
            elif slot in into:
                into[slot] += gbuf[slot]
            else:
                into[slot] = gbuf[slot].copy()
        tape_counters.record_replay("backward", time.perf_counter() - start)

    def apply_accumulated(self, into: Dict[int, np.ndarray], scale: np.ndarray) -> None:
        """Flush ``into`` (from :meth:`replay_backward`) scaled by ``scale``."""
        for slot, tensor in self.grad_leaves:
            acc = into.get(slot)
            if acc is not None:
                tensor._accumulate_grad(acc * scale)

    # -- validation -----------------------------------------------------

    def _self_check(self) -> None:
        """Replay against the recorded arrays and demand bit-equality.

        Providers are stubbed with the recorded draws and input tags
        bound to their recorded arrays, so a correct compile must
        reproduce every traced intermediate exactly.  Any deviation
        (missed fast path, aliasing bug, unsupported broadcast) fails
        the compile here — before the tape is ever trusted.
        """
        bindings = dict(self._capture.input_tags)
        self.replay_forward(bindings=bindings, _stub_providers=True)
        for node in self._nodes:
            for slot in node.check_slots:
                got, want = self._vals[slot], self._recorded[slot]
                if (
                    got.shape != want.shape
                    or got.dtype != want.dtype
                    or not np.array_equal(got, want, equal_nan=True)
                ):
                    raise TapeError(
                        f"self-check mismatch at op {node.op!r} (slot {slot})"
                    )


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------

#: Sentinel marking a signature that failed to compile (permanent
#: interpreted fallback — never retraced).
_FAILED = object()


class TapeCache:
    """Compiled tapes keyed by caller-built signature tuples.

    The signature must cover everything the compiled closures baked in:
    input shapes/dtypes, label content, precision policy, backend
    switches, draw counts and parameter ``requires_grad`` masks — any
    change produces a new key, forcing a clean retrace instead of a
    stale replay.
    """

    def __init__(self) -> None:
        self._entries: Dict[tuple, object] = {}

    def lookup(self, key: tuple) -> object:
        """Return a :class:`CompiledTape`, ``"failed"``, or ``None``."""
        entry = self._entries.get(key)
        if entry is _FAILED:
            return "failed"
        return entry

    def store(self, key: tuple, tape: CompiledTape) -> None:
        """Cache a freshly compiled tape under ``key``."""
        self._entries[key] = tape

    def mark_failed(self, key: tuple) -> None:
        """Permanently route ``key`` to the interpreted fallback."""
        self._entries[key] = _FAILED

    def clear(self) -> None:
        """Drop every entry (tests and explicit invalidation)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
