"""Custom autograd Functions — fused ops with hand-derived backwards.

The per-op closures of :mod:`repro.autograd.tensor` are ideal for
elementwise arithmetic, but a time-unrolled recurrence built from them
costs O(steps) Python-level graph nodes per forward *and* a matching
tape walk per backward — pure interpreter overhead that dwarfs the
numpy FLOPs on the small arrays printed circuits produce.  This module
adds the one extension point the engine lacked: a
:class:`Function` base class in the style of ``torch.autograd.Function``
that collapses an arbitrary computation into a *single* graph node with
an analytic backward.

Subclasses implement two static methods over raw numpy arrays::

    class MyOp(Function):
        @staticmethod
        def forward(ctx, *arrays, **kwargs) -> np.ndarray: ...

        @staticmethod
        def backward(ctx, grad) -> tuple[np.ndarray | None, ...]: ...

and are invoked through :meth:`Function.apply`, which handles Tensor
coercion, graph wiring (respecting ``no_grad``) and broadcast-aware
gradient routing: every gradient returned by ``backward`` is reduced to
its input's shape via the engine's ``_unbroadcast`` before
accumulation, so backwards may return gradients in the (numpy-)
broadcast result shape.

:class:`FilterScan` — the fused RC-recurrence kernel behind the
learnable printed filters (``scan_backend="fused"``) — is the first
user; see :func:`filter_scan` for the adjoint derivation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import tensor as _tensor
from .tensor import ArrayLike, Tensor, _unbroadcast

__all__ = ["Function", "FunctionContext", "FilterScan", "filter_scan"]


class FunctionContext:
    """Per-invocation scratch space shared between forward and backward.

    ``forward`` stashes whatever intermediate arrays its analytic
    backward needs via :meth:`save_for_backward`; attributes may be
    assigned freely for non-array state (shapes, flags).
    ``needs_input_grad[i]`` tells the backward whether input ``i``
    requires a gradient at all, so it can skip dead computation.
    """

    __slots__ = ("saved", "needs_input_grad", "__dict__")

    def __init__(self) -> None:
        self.saved: Tuple[np.ndarray, ...] = ()
        self.needs_input_grad: Tuple[bool, ...] = ()

    def save_for_backward(self, *arrays: np.ndarray) -> None:
        """Keep arrays alive for the backward pass."""
        self.saved = tuple(arrays)

    @property
    def saved_arrays(self) -> Tuple[np.ndarray, ...]:
        """The arrays stored by :meth:`save_for_backward`."""
        return self.saved


class Function:
    """Base class for fused differentiable ops (one graph node each).

    Subclasses override :meth:`forward` and :meth:`backward` as
    *static* methods operating on raw ``numpy`` arrays; user code calls
    ``MyOp.apply(...)`` with tensors (or anything coercible).  The
    whole subclass computation appears as a single node in the autograd
    graph, so backpropagation through it costs one Python call instead
    of one per primitive op.
    """

    @staticmethod
    def forward(ctx: FunctionContext, *arrays: np.ndarray, **kwargs) -> np.ndarray:
        """Compute the op's value from raw arrays; save state on ``ctx``."""
        raise NotImplementedError

    @staticmethod
    def backward(
        ctx: FunctionContext, grad: np.ndarray
    ) -> Tuple[Optional[np.ndarray], ...]:
        """Return one gradient (or ``None``) per positional input.

        Gradients may be returned in the broadcast result shape — they
        are reduced to each input's shape by the caller.
        """
        raise NotImplementedError

    @classmethod
    def apply(cls, *inputs: ArrayLike, **kwargs) -> Tensor:
        """Run ``forward`` and wire a single backward node into the graph."""
        tensors: List[Tensor] = [
            t if isinstance(t, Tensor) else Tensor(t) for t in inputs
        ]
        ctx = FunctionContext()
        ctx.needs_input_grad = tuple(t.requires_grad for t in tensors)
        data = cls.forward(ctx, *[t.data for t in tensors], **kwargs)

        def backward_fn(grad: np.ndarray) -> None:
            grads = cls.backward(ctx, grad)
            if len(grads) != len(tensors):
                raise RuntimeError(
                    f"{cls.__name__}.backward returned {len(grads)} gradients "
                    f"for {len(tensors)} inputs"
                )
            for tensor, g in zip(tensors, grads):
                if tensor.requires_grad and g is not None:
                    tensor._accumulate_grad(
                        _unbroadcast(
                            np.asarray(g, dtype=tensor.data.dtype), tensor.shape
                        )
                    )

        attrs = (
            {"function": cls, "kwargs": dict(kwargs)}
            if _tensor._tracer is not None
            else None
        )
        return Tensor._from_op(
            np.asarray(data), tensors, backward_fn, cls.__name__, attrs
        )


class FilterScan(Function):
    """Fused first-order IIR scan ``v_k = a ⊙ v_{k−1} + b ⊙ x_k``.

    Forward runs the whole time loop in numpy, writing into one
    preallocated output array — no per-step Tensor allocation, no
    ``stack`` node.  Backward runs the reverse-time adjoint scan
    analytically.  With ``ḡ_k = ∂L/∂v_k`` (direct) and
    ``g_k = ḡ_k + a ⊙ g_{k+1}`` (total, ``g_{T+1} = 0``):

    * ``∂L/∂x_k = b ⊙ g_k``
    * ``∂L/∂a   = Σ_k g_k ⊙ v_{k−1}``  (``v_0`` denoting the initial state)
    * ``∂L/∂b   = Σ_k g_k ⊙ x_k``
    * ``∂L/∂v0  = a ⊙ g_1``

    Shape-polymorphic over the Monte-Carlo draws axis: ``(draws, n)``
    coefficients gain a broadcast batch axis exactly like the unfused
    path (``a → (draws, 1, n)``), so fused and unfused forwards perform
    bit-identical arithmetic per element.
    """

    @staticmethod
    def forward(
        ctx: FunctionContext,
        x: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        v0: np.ndarray,
    ) -> np.ndarray:
        if a.ndim == 2:
            # (draws, n) -> (draws, 1, n): broadcast over the batch axis,
            # mirroring the unfused path's unsqueeze(1).
            a_e = a[:, None, :]
            b_e = b[:, None, :]
        else:
            a_e, b_e = a, b
        steps = x.shape[-2]
        step_shape = np.broadcast_shapes(
            a_e.shape, b_e.shape, v0.shape, x.shape[:-2] + x.shape[-1:]
        )
        # Time-major internal layout: buf[k] is a *contiguous*
        # (..., n) slab, so every per-step numpy call streams over
        # contiguous memory instead of the strided (..., k, :) views a
        # (..., time, n) buffer would force (~2x on the hot sizes).
        # The caller-facing result is a moveaxis view back to
        # (..., time, n); when two scans chain (SO-LF), stage 2's
        # moveaxis of stage 1's view recovers the contiguous buffer and
        # the ascontiguousarray below becomes a no-op.
        x_tm = np.ascontiguousarray(np.moveaxis(x, -2, 0))
        # View x_tm at full rank (1s over any broadcast axes, e.g. a
        # missing draws axis) so time-leading stacked ops align; this
        # is shape metadata only, no copy.
        pad = 1 + len(step_shape) - x_tm.ndim
        x_tm_e = (
            x_tm.reshape(x_tm.shape[:1] + (1,) * pad + x_tm.shape[1:])
            if pad > 0
            else x_tm
        )
        dtype = np.result_type(x, a, b, v0)
        buf = np.empty((steps,) + step_shape, dtype=dtype)
        # Pre-fill every step's b ⊙ x_k term in ONE vectorized multiply
        # (b_e gains a leading time axis so it broadcasts against the
        # stacked x); the loop then only carries the irreducibly
        # sequential a ⊙ v part — 2 ufunc calls per step instead of 3,
        # which matters because ufunc dispatch overhead dominates on the
        # small per-step slabs printed circuits produce.
        np.multiply(b_e[None], x_tm_e, out=buf)
        # Densify the broadcast coefficient once: a stride-0 middle
        # axis roughly doubles numpy's per-call multiply cost at these
        # sizes, and the loop pays it ``steps`` times.
        a_d = (
            np.ascontiguousarray(np.broadcast_to(a_e, step_shape))
            if a_e.shape != step_shape
            else a_e
        )
        tmp = np.empty(step_shape, dtype=dtype)
        v: np.ndarray = v0
        for k in range(steps):
            vk = buf[k]
            # vk = (b ⊙ x_k) + (a ⊙ v); the unfused node computes
            # a*v + b*x — IEEE addition is commutative, so the result
            # is bit-equal.
            np.multiply(a_d, v, out=tmp)
            vk += tmp
            v = vk
        ctx.save_for_backward(x_tm_e, a, b, v0, buf)
        ctx.a_expanded_shape = a_e.shape
        ctx.b_expanded_shape = b_e.shape
        ctx.step_shape = step_shape
        return np.moveaxis(buf, 0, -2)

    @staticmethod
    def backward(
        ctx: FunctionContext, grad: np.ndarray
    ) -> Tuple[Optional[np.ndarray], ...]:
        x_tm, a, b, v0, buf = ctx.saved
        need_x, need_a, need_b, need_v0 = ctx.needs_input_grad
        a_e = a.reshape(ctx.a_expanded_shape)
        b_e = b.reshape(ctx.b_expanded_shape)
        steps = buf.shape[0]
        step_shape = ctx.step_shape

        # Same time-major trick as the forward: if ``grad`` is itself a
        # moveaxis view of a time-major buffer (a chained scan's
        # grad_x), this is a free view; otherwise one vectorized copy.
        grad_tm = np.ascontiguousarray(np.moveaxis(grad, -2, 0))
        # Only the adjoint recurrence g_k = ḡ_k + a ⊙ g_{k+1} is
        # inherently sequential; run it alone (2 ufunc calls per step,
        # writing every g_k into the time-major G buffer) and form the
        # input/coefficient gradients as whole-tensor vectorized ops
        # afterwards.  At the hot sizes the per-step ufunc dispatch
        # overhead, not the FLOPs, is the bottleneck.
        G = np.empty((steps,) + step_shape, dtype=buf.dtype)
        a_d = (
            np.ascontiguousarray(np.broadcast_to(a_e, step_shape))
            if a_e.shape != step_shape
            else a_e
        )
        g = np.zeros(step_shape, dtype=buf.dtype)
        tmp = np.empty(step_shape, dtype=buf.dtype)
        for k in range(steps - 1, -1, -1):
            np.multiply(a_d, g, out=tmp)
            g = G[k]
            np.add(grad_tm[k], tmp, out=g)
        # ∂L/∂x_k = b ⊙ g_k for every k at once.
        grad_x = np.multiply(b_e[None], G) if need_x else None
        # ∂L/∂a = Σ_k g_k ⊙ v_{k−1}: pair G[1:] with buf[:-1] (states
        # v_1..v_{T−1}) and add the initial-state term g_1 ⊙ v_0.
        if need_a:
            grad_a = np.einsum("k...,k...->...", G[1:], buf[:-1]) + G[0] * v0
        else:
            grad_a = None
        # ∂L/∂b = Σ_k g_k ⊙ x_k (x_tm broadcasts over any missing
        # draws axis exactly as in the forward).
        grad_b = np.einsum("k...,k...->...", G, x_tm) if need_b else None
        grad_v0 = a_e * G[0] if need_v0 else None

        # Coefficient gradients must be reduced against the *expanded*
        # operand shape first: the kernel inserts a middle batch axis
        # ((draws, n) -> (draws, 1, n)), which the caller's trailing-
        # aligned unbroadcast cannot infer on its own.
        if need_a:
            grad_a = _unbroadcast(grad_a, a_e.shape).reshape(a.shape)
        if need_b:
            grad_b = _unbroadcast(grad_b, b_e.shape).reshape(b.shape)
        if need_x:
            grad_x = np.moveaxis(grad_x, 0, -2)
        return grad_x, grad_a, grad_b, grad_v0


def filter_scan(x: ArrayLike, a: ArrayLike, b: ArrayLike, v0: ArrayLike) -> Tensor:
    """Differentiable fused RC recurrence ``v_k = a ⊙ v_{k−1} + b ⊙ x_k``.

    Parameters follow the learnable-filter layout (time axis at ``-2``):

    * sequential — ``x`` is ``(batch, time, n)``, ``a``/``b`` are
      ``(n,)``, ``v0`` is ``(batch, n)`` or ``(n,)``;
    * batched Monte-Carlo — ``a``/``b`` carry a leading draws axis
      ``(draws, n)`` and ``v0`` is ``(draws, batch, n)``; ``x`` may be
      the shared ``(batch, time, n)`` input (broadcast over draws) or a
      draw-dependent ``(draws, batch, time, n)`` stack.

    Returns ``(batch, time, n)`` or ``(draws, batch, time, n)``.  The
    whole scan is one autograd node; its backward is the analytic
    reverse-time adjoint (see :class:`FilterScan`).
    """
    return FilterScan.apply(x, a, b, v0)
