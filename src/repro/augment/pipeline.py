"""Augmentation pipelines and per-dataset configuration.

The paper combines the augmented data with the original, un-augmented
data "during training, validation and testing" (Sec. IV-A2), and tunes
per-dataset hyper-parameters (crop size, noise level, time warping)
with Ray Tune.  :func:`augment_dataset` implements the
combine-with-original policy; :data:`RECOMMENDED_CONFIGS` holds
per-dataset settings in the spirit of the paper's tuned values (they
can be re-tuned with :mod:`repro.tuning`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .base import Augmenter, Compose
from .transforms import (
    Drift,
    Dropout,
    FrequencyNoise,
    Jitter,
    MagnitudeScale,
    Pool,
    RandomCrop,
    TimeWarp,
)

__all__ = [
    "AugmentationConfig",
    "build_pipeline",
    "augment_dataset",
    "perturb",
    "RECOMMENDED_CONFIGS",
    "default_config",
]


@dataclass(frozen=True)
class AugmentationConfig:
    """Hyper-parameters of one augmentation pipeline.

    A technique is disabled by setting its parameter to 0 (or 1.0 for
    ``crop_fraction``, 1 for ``pool_size``).  The first five fields are
    the paper's techniques; ``drift_max`` / ``pool_size`` /
    ``dropout_p`` expose the extended tsaug operators and default to
    off.
    """

    jitter_sigma: float = 0.05
    time_warp_strength: float = 0.15
    magnitude_sigma: float = 0.1
    crop_fraction: float = 0.9
    frequency_sigma: float = 0.1
    drift_max: float = 0.0
    pool_size: int = 1
    dropout_p: float = 0.0

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0 or self.magnitude_sigma < 0 or self.frequency_sigma < 0:
            raise ValueError("noise levels must be non-negative")
        if not 0 <= self.time_warp_strength < 1:
            raise ValueError("time_warp_strength must be in [0, 1)")
        if not 0.1 <= self.crop_fraction <= 1.0:
            raise ValueError("crop_fraction must be in [0.1, 1]")
        if self.drift_max < 0:
            raise ValueError("drift_max must be non-negative")
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if not 0.0 <= self.dropout_p < 1.0:
            raise ValueError("dropout_p must be in [0, 1)")


def build_pipeline(config: AugmentationConfig, p: float = 1.0) -> Compose:
    """Build the Compose pipeline for one config (disabled steps skipped)."""
    steps: list[Augmenter] = []
    if config.jitter_sigma > 0:
        steps.append(Jitter(config.jitter_sigma))
    if config.time_warp_strength > 0:
        steps.append(TimeWarp(config.time_warp_strength))
    if config.magnitude_sigma > 0:
        steps.append(MagnitudeScale(config.magnitude_sigma))
    if config.crop_fraction < 1.0:
        steps.append(RandomCrop(config.crop_fraction))
    if config.frequency_sigma > 0:
        steps.append(FrequencyNoise(config.frequency_sigma))
    if config.drift_max > 0:
        steps.append(Drift(config.drift_max))
    if config.pool_size > 1:
        steps.append(Pool(config.pool_size))
    if config.dropout_p > 0:
        steps.append(Dropout(config.dropout_p))
    if not steps:
        raise ValueError("config disables every augmentation")
    return Compose(steps, p=p)


def augment_dataset(
    x: np.ndarray,
    y: np.ndarray,
    config: AugmentationConfig,
    seed: int = 0,
    copies: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Paper policy: return original data plus ``copies`` augmented copies.

    Labels are replicated accordingly.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    pipeline = build_pipeline(config)
    rng = np.random.default_rng(seed)
    parts_x = [np.asarray(x, dtype=np.float64)]
    parts_y = [np.asarray(y)]
    for _ in range(copies):
        parts_x.append(pipeline(x, rng))
        parts_y.append(np.asarray(y))
    return np.concatenate(parts_x, axis=0), np.concatenate(parts_y, axis=0)


def perturb(
    x: np.ndarray,
    config: Optional[AugmentationConfig] = None,
    seed: int = 0,
) -> np.ndarray:
    """Produce the *perturbed* version of a set of series.

    Used to build the perturbed test sets of Fig. 5 / Fig. 7: sensor
    jitter, mild warping, amplitude change, drift and dropouts — but no
    crop or pooling (test series stay aligned with their labels' full
    support and keep their native resolution).
    """
    config = config or AugmentationConfig(crop_fraction=1.0)
    pipeline = build_pipeline(
        AugmentationConfig(
            jitter_sigma=config.jitter_sigma,
            time_warp_strength=config.time_warp_strength,
            magnitude_sigma=config.magnitude_sigma,
            crop_fraction=1.0,
            frequency_sigma=config.frequency_sigma,
            drift_max=config.drift_max,
            pool_size=1,
            dropout_p=config.dropout_p,
        )
    )
    return pipeline(x, np.random.default_rng(seed))


#: Per-dataset configs following the paper's notes: frequency-domain
#: noise for PowerCons and SmoothS, aggressive cropping for MSRT and
#: Symbols, defaults elsewhere.  Regenerate with ``repro.tuning``.
RECOMMENDED_CONFIGS: Dict[str, AugmentationConfig] = {
    "CBF": AugmentationConfig(jitter_sigma=0.08, time_warp_strength=0.2),
    "DPTW": AugmentationConfig(jitter_sigma=0.05, time_warp_strength=0.1),
    "FRT": AugmentationConfig(jitter_sigma=0.06),
    "FST": AugmentationConfig(jitter_sigma=0.1, magnitude_sigma=0.15),
    "GPAS": AugmentationConfig(jitter_sigma=0.04, time_warp_strength=0.1),
    "GPMVF": AugmentationConfig(jitter_sigma=0.05),
    "GPOVY": AugmentationConfig(jitter_sigma=0.05),
    "MPOAG": AugmentationConfig(jitter_sigma=0.05, time_warp_strength=0.12),
    "MSRT": AugmentationConfig(crop_fraction=0.7, jitter_sigma=0.06),
    "PowerCons": AugmentationConfig(frequency_sigma=0.15, jitter_sigma=0.05),
    "PPOC": AugmentationConfig(jitter_sigma=0.05),
    "SRSCP2": AugmentationConfig(jitter_sigma=0.08, magnitude_sigma=0.1),
    "Slope": AugmentationConfig(jitter_sigma=0.06, magnitude_sigma=0.08),
    "SmoothS": AugmentationConfig(frequency_sigma=0.15, jitter_sigma=0.05),
    "Symbols": AugmentationConfig(crop_fraction=0.75, jitter_sigma=0.05),
}


def default_config(dataset: str) -> AugmentationConfig:
    """Recommended config for a dataset (library default when unknown)."""
    return RECOMMENDED_CONFIGS.get(dataset, AugmentationConfig())
