"""The five augmentation techniques of Sec. III-B.

* :class:`Jitter` — additive Gaussian noise, "to introduce sensor
  inaccuracies";
* :class:`TimeWarp` — smooth non-linear time re-parameterisation, "to
  alter the temporal dynamics";
* :class:`MagnitudeScale` — per-series amplitude scaling, "to simulate
  changes in sensor readings";
* :class:`RandomCrop` — crop-and-stretch, "to mimic partial data
  availability" (effective for MSRT and Symbols);
* :class:`FrequencyNoise` — perturbation of FFT coefficients, "to
  simulate signal distortions" (applied to PowerCons and SmoothS).
"""

from __future__ import annotations

import numpy as np

from .base import Augmenter

__all__ = [
    "Jitter",
    "TimeWarp",
    "MagnitudeScale",
    "RandomCrop",
    "FrequencyNoise",
    "Drift",
    "Pool",
    "Dropout",
]


class Jitter(Augmenter):
    """Additive i.i.d. Gaussian noise of standard deviation ``sigma``."""

    def __init__(self, sigma: float = 0.05) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma

    def apply(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return x + rng.normal(0.0, self.sigma, size=x.shape)


class TimeWarp(Augmenter):
    """Smooth random warping of the time axis.

    A monotone warp is built from ``n_knots`` random slopes and each
    series is resampled along it; ``strength`` bounds the local speed
    change (0.3 means the warped clock runs 0.7×-1.3×).
    """

    def __init__(self, strength: float = 0.2, n_knots: int = 4) -> None:
        if not 0 <= strength < 1:
            raise ValueError("strength must be in [0, 1)")
        if n_knots < 2:
            raise ValueError("need at least 2 knots")
        self.strength = strength
        self.n_knots = n_knots

    def apply(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, length = x.shape
        t = np.linspace(0.0, 1.0, length)
        knots = np.linspace(0.0, 1.0, self.n_knots)
        out = np.empty_like(x)
        for i in range(n):
            speeds = rng.uniform(1.0 - self.strength, 1.0 + self.strength, self.n_knots)
            local_speed = np.interp(t, knots, speeds)
            warped = np.cumsum(local_speed)
            warped = (warped - warped[0]) / (warped[-1] - warped[0])
            out[i] = np.interp(warped, t, x[i])
        return out


class MagnitudeScale(Augmenter):
    """Multiply each series by a random factor around 1."""

    def __init__(self, sigma: float = 0.1) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma

    def apply(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        scale = rng.normal(1.0, self.sigma, size=(x.shape[0], 1))
        return x * scale


class RandomCrop(Augmenter):
    """Crop a random window of relative size ``crop_fraction`` and
    stretch it back to the original length — partial data availability
    with unchanged series length."""

    def __init__(self, crop_fraction: float = 0.8) -> None:
        if not 0.1 <= crop_fraction <= 1.0:
            raise ValueError("crop_fraction must be in [0.1, 1]")
        self.crop_fraction = crop_fraction

    def apply(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, length = x.shape
        window = max(2, int(round(self.crop_fraction * length)))
        if window >= length:
            return x.copy()
        t_out = np.linspace(0.0, 1.0, length)
        out = np.empty_like(x)
        for i in range(n):
            start = rng.integers(0, length - window + 1)
            segment = x[i, start : start + window]
            t_in = np.linspace(0.0, 1.0, window)
            out[i] = np.interp(t_out, t_in, segment)
        return out


class FrequencyNoise(Augmenter):
    """Perturb rFFT coefficients with relative Gaussian noise.

    Each retained frequency bin's complex amplitude is scaled by
    ``1 + N(0, sigma)`` and rotated by a small random phase; bins above
    ``max_bin_fraction`` of the spectrum are left untouched so the
    distortion stays plausible for band-limited sensor signals.
    """

    def __init__(self, sigma: float = 0.1, max_bin_fraction: float = 0.5) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0 < max_bin_fraction <= 1:
            raise ValueError("max_bin_fraction must be in (0, 1]")
        self.sigma = sigma
        self.max_bin_fraction = max_bin_fraction

    def apply(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, length = x.shape
        spectrum = np.fft.rfft(x, axis=1)
        bins = spectrum.shape[1]
        cutoff = max(1, int(round(self.max_bin_fraction * bins)))
        gain = 1.0 + rng.normal(0.0, self.sigma, size=(n, cutoff))
        phase = rng.normal(0.0, self.sigma * 0.5, size=(n, cutoff))
        spectrum[:, :cutoff] *= gain * np.exp(1j * phase)
        return np.fft.irfft(spectrum, n=length, axis=1)


class Drift(Augmenter):
    """Smooth random baseline drift added to each series.

    Sensor baselines wander (temperature dependence, electrode
    polarisation); tsaug models this as a random walk through
    ``n_knots`` anchor points with maximum excursion ``max_drift``.
    """

    def __init__(self, max_drift: float = 0.2, n_knots: int = 4) -> None:
        if max_drift < 0:
            raise ValueError("max_drift must be non-negative")
        if n_knots < 2:
            raise ValueError("need at least 2 knots")
        self.max_drift = max_drift
        self.n_knots = n_knots

    def apply(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, length = x.shape
        t = np.linspace(0.0, 1.0, length)
        knots = np.linspace(0.0, 1.0, self.n_knots)
        out = np.empty_like(x)
        for i in range(n):
            anchors = np.cumsum(rng.normal(0.0, 1.0, self.n_knots))
            span = np.abs(anchors).max()
            if span > 0:
                anchors = anchors / span * self.max_drift * rng.uniform(0.3, 1.0)
            out[i] = x[i] + np.interp(t, knots, anchors)
        return out


class Pool(Augmenter):
    """Local average pooling that blurs fine temporal detail.

    Replaces each window of ``size`` samples by its mean (then holds
    it), mimicking a slow/averaging sensor front-end — the tsaug
    ``Pool`` operator.
    """

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size

    def apply(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.size == 1:
            return x.copy()
        n, length = x.shape
        out = np.empty_like(x)
        for start in range(0, length, self.size):
            stop = min(start + self.size, length)
            out[:, start:stop] = x[:, start:stop].mean(axis=1, keepdims=True)
        return out


class Dropout(Augmenter):
    """Randomly drop samples and fill them with the previous value.

    Models intermittent sensor dropouts / transmission losses (tsaug's
    ``Dropout`` with ``fill='ffill'``): each sample is lost with
    probability ``p`` and replaced by the last delivered value.
    """

    def __init__(self, p: float = 0.05) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError("p must be in [0, 1)")
        self.p = p

    def apply(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.p == 0.0:
            return x.copy()
        out = x.copy()
        lost = rng.uniform(size=x.shape) < self.p
        lost[:, 0] = False  # the first sample is always delivered
        for i in range(x.shape[0]):
            for k in np.nonzero(lost[i])[0]:
                out[i, k] = out[i, k - 1]
        return out
