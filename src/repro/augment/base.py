"""Augmenter protocol and composition.

Re-implements the tsaug-style interface the paper uses (Sec. III-B):
every augmenter maps a batch of series ``(n, length)`` to an augmented
batch of the same shape, driven by an explicit RNG.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["Augmenter", "Compose", "check_batch"]


def check_batch(x: np.ndarray) -> np.ndarray:
    """Validate and coerce a batch of series to float64 ``(n, length)``."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (n, length) batch, got shape {x.shape}")
    if x.shape[1] < 2:
        raise ValueError("series must have at least 2 samples")
    return x


class Augmenter:
    """Base class: subclasses implement :meth:`apply`."""

    def apply(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return an augmented copy of the batch ``x``."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return self.apply(check_batch(x), rng)

    def __repr__(self) -> str:
        params = {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }
        inner = ", ".join(f"{k}={v}" for k, v in params.items())
        return f"{type(self).__name__}({inner})"


class Compose(Augmenter):
    """Apply a sequence of augmenters, each with probability ``p``.

    Mirrors how the paper combines jittering, time warping, magnitude
    scaling, cropping and frequency-domain noise into one training-time
    pipeline (Fig. 6 shows the combined application on PowerCons).
    """

    def __init__(self, augmenters: Sequence[Augmenter], p: float = 1.0) -> None:
        if not augmenters:
            raise ValueError("Compose needs at least one augmenter")
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.augmenters: List[Augmenter] = list(augmenters)
        self.p = p

    def apply(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = x
        for augmenter in self.augmenters:
            if self.p >= 1.0 or rng.uniform() < self.p:
                out = augmenter(out, rng)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.augmenters)
        return f"Compose([{inner}], p={self.p})"
