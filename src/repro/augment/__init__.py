"""Time-series augmentation (the tsaug substitute)."""

from .base import Augmenter, Compose
from .pipeline import (
    RECOMMENDED_CONFIGS,
    AugmentationConfig,
    augment_dataset,
    build_pipeline,
    default_config,
    perturb,
)
from .transforms import (
    Drift,
    Dropout,
    FrequencyNoise,
    Jitter,
    MagnitudeScale,
    Pool,
    RandomCrop,
    TimeWarp,
)

__all__ = [
    "Augmenter",
    "Compose",
    "Jitter",
    "TimeWarp",
    "MagnitudeScale",
    "RandomCrop",
    "FrequencyNoise",
    "Drift",
    "Pool",
    "Dropout",
    "AugmentationConfig",
    "build_pipeline",
    "augment_dataset",
    "perturb",
    "RECOMMENDED_CONFIGS",
    "default_config",
]
