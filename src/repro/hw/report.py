"""Hardware-cost report: regenerates Table III.

For every benchmark dataset, instantiate the baseline pTPNC and the
proposed ADAPT-pNC at their respective design points, count printed
devices and estimate static power, and tabulate baseline vs proposed
with the dataset-average row, matching the structure of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data import DATASET_INFO
from ..nn.module import Module
from .counting import DeviceCount, count_devices
from .power import estimate_power

__all__ = ["HardwareRow", "hardware_report", "format_hardware_table"]


@dataclass
class HardwareRow:
    """Baseline-vs-proposed hardware costs for one dataset."""

    dataset: str
    baseline: DeviceCount
    proposed: DeviceCount
    baseline_power_mw: float
    proposed_power_mw: float

    @property
    def device_ratio(self) -> float:
        """Proposed / baseline total device count."""
        return self.proposed.total / max(self.baseline.total, 1)

    @property
    def power_reduction(self) -> float:
        """Fractional power reduction of the proposed design."""
        if self.baseline_power_mw <= 0:
            return 0.0
        return 1.0 - self.proposed_power_mw / self.baseline_power_mw


def _measure(model: Module) -> tuple:
    return count_devices(model), estimate_power(model).total_mw


def hardware_report(
    datasets: Optional[Sequence[str]] = None,
    seed: int = 0,
    models: Optional[Dict[str, Dict[str, Module]]] = None,
) -> List[HardwareRow]:
    """Build Table III rows.

    Parameters
    ----------
    datasets:
        Dataset names (all 15 when omitted).
    seed:
        Initialisation seed for freshly instantiated models.
    models:
        Optional ``{dataset: {"baseline": model, "proposed": model}}`` of
        *trained* models; when omitted, freshly initialised topologies
        are measured (device counts then reflect the untrained layout).
    """
    from ..core.models import AdaptPNC, PTPNC

    names = list(datasets) if datasets is not None else list(DATASET_INFO)
    rows: List[HardwareRow] = []
    for name in names:
        info = DATASET_INFO[name]
        if models is not None and name in models:
            baseline_model = models[name]["baseline"]
            proposed_model = models[name]["proposed"]
        else:
            rng_b = np.random.default_rng(seed)
            rng_p = np.random.default_rng(seed)
            baseline_model = PTPNC(info.n_classes, rng=rng_b)
            proposed_model = AdaptPNC(info.n_classes, rng=rng_p)
        base_count, base_power = _measure(baseline_model)
        prop_count, prop_power = _measure(proposed_model)
        rows.append(
            HardwareRow(
                dataset=name,
                baseline=base_count,
                proposed=prop_count,
                baseline_power_mw=base_power,
                proposed_power_mw=prop_power,
            )
        )
    return rows


def format_hardware_table(rows: Sequence[HardwareRow]) -> str:
    """Render rows (plus the average row) as an ASCII table."""
    header = (
        f"{'Dataset':<10} {'#T base':>8} {'#T prop':>8} {'#R base':>8} {'#R prop':>8} "
        f"{'#C base':>8} {'#C prop':>8} {'Tot base':>9} {'Tot prop':>9} "
        f"{'P base(mW)':>11} {'P prop(mW)':>11}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.dataset:<10} {row.baseline.transistors:>8} {row.proposed.transistors:>8} "
            f"{row.baseline.resistors:>8} {row.proposed.resistors:>8} "
            f"{row.baseline.capacitors:>8} {row.proposed.capacitors:>8} "
            f"{row.baseline.total:>9} {row.proposed.total:>9} "
            f"{row.baseline_power_mw:>11.3f} {row.proposed_power_mw:>11.3f}"
        )
    n = len(rows)
    if n:
        avg = lambda f: sum(f(r) for r in rows) / n  # noqa: E731
        lines.append("-" * len(header))
        lines.append(
            f"{'Average':<10} {avg(lambda r: r.baseline.transistors):>8.0f} "
            f"{avg(lambda r: r.proposed.transistors):>8.0f} "
            f"{avg(lambda r: r.baseline.resistors):>8.0f} "
            f"{avg(lambda r: r.proposed.resistors):>8.0f} "
            f"{avg(lambda r: r.baseline.capacitors):>8.0f} "
            f"{avg(lambda r: r.proposed.capacitors):>8.0f} "
            f"{avg(lambda r: r.baseline.total):>9.0f} "
            f"{avg(lambda r: r.proposed.total):>9.0f} "
            f"{avg(lambda r: r.baseline_power_mw):>11.3f} "
            f"{avg(lambda r: r.proposed_power_mw):>11.3f}"
        )
    return "\n".join(lines)
