"""Static power estimation for printed temporal networks.

Two contributions dominate a pNC's static power:

* **crossbar resistors** — permanently biased between voltage rails;
  each dissipates ``utilisation · V_dd² / R`` where R comes from the
  trained surrogate conductance mapped through the PDK;
* **transistor stages** — inverters, ptanh circuits and SO-LF buffers
  draw a per-transistor static bias current set by the design style
  (the redesigned ADAPT-pNC primitives draw ≈30× less than the
  NANOARCH'23 baseline — the Table III technology gap).

Filter resistors carry no static current (their capacitors block DC),
so the filter bank contributes only through its buffer transistors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits import PrintedCrossbar, PrintedTanh
from ..circuits.filters import FirstOrderLearnableFilter, SecondOrderLearnableFilter
from ..nn.module import Module
from .counting import INVERTER_TRANSISTORS, PTANH_TRANSISTORS

__all__ = ["PowerBreakdown", "estimate_power", "energy_per_inference"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Static power (watts) split by contribution."""

    crossbar_resistors: float
    transistor_stages: float

    @property
    def total(self) -> float:
        """Total static power in watts."""
        return self.crossbar_resistors + self.transistor_stages

    @property
    def total_mw(self) -> float:
        """Total static power in milliwatts (the paper's unit)."""
        return self.total * 1e3


def estimate_power(model: Module) -> PowerBreakdown:
    """Estimate the static power of a printed model.

    Each printed sub-circuit carries its PDK, so mixed-technology
    compositions are handled naturally.
    """
    resistor_power = 0.0
    transistor_power = 0.0
    for module in model.modules():
        if isinstance(module, PrintedCrossbar):
            pdk = module.pdk
            for r in module.printable_resistances():
                resistor_power += pdk.resistor_static_power(float(r))
            transistor_power += (
                INVERTER_TRANSISTORS * module.count_inverters() * pdk.transistor_bias_power
            )
        elif isinstance(module, PrintedTanh):
            # ptanh circuits sit behind a crossbar; use the parent
            # technology via the nearest crossbar is not tracked, so the
            # activation carries the model-level default resolved below.
            transistor_power += PTANH_TRANSISTORS * module.num_neurons * _stage_power(model)
        elif isinstance(module, (FirstOrderLearnableFilter, SecondOrderLearnableFilter)):
            transistor_power += module.count_transistors() * module.pdk.transistor_bias_power
    return PowerBreakdown(
        crossbar_resistors=resistor_power, transistor_stages=transistor_power
    )


def energy_per_inference(
    model: Module, sequence_length: int = 64, dt: float = 1e-3
) -> float:
    """Energy (joules) to classify one series.

    Analog pNCs burn static power for the whole sequence duration —
    there is no clocked idle state — so energy is simply
    ``P_static × length × Δt``.  The baseline/proposed comparison at the
    paper's 64-sample, 1 kHz operating point lands in the single-digit
    microjoule range for the proposed design.
    """
    if sequence_length <= 0:
        raise ValueError("sequence_length must be positive")
    if dt <= 0:
        raise ValueError("dt must be positive")
    return estimate_power(model).total * sequence_length * dt


def _stage_power(model: Module) -> float:
    """Per-transistor bias power of the model's design style.

    Resolved from the first printed crossbar found (every block of a
    model shares one PDK); falls back to the default technology.
    """
    for module in model.modules():
        if isinstance(module, PrintedCrossbar):
            return module.pdk.transistor_bias_power
    from ..circuits import DEFAULT_PDK

    return DEFAULT_PDK.transistor_bias_power
