"""Structural device counting for printed temporal networks.

Counts follow the pPDK schematics (Fig. 3 and Sec. IV-A1):

* a crossbar column with ``n`` printable input crossings uses ``n``
  input resistors plus a bias and a dummy resistor;
* every negative crossing routes through a printed inverter
  (2 transistors + 1 resistor);
* every output column ends in a ptanh circuit (2 transistors +
  2 resistors);
* a first-order learnable filter is 1 R + 1 C per channel; an SO-LF is
  2 R + 2 C per channel plus a 2-transistor decoupling buffer.

Pruned crossings (surrogate conductance below the printable minimum)
are open circuits and are not counted — device counts therefore depend
on the *trained* parameters, exactly as a bespoke printed layout would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits import PrintedCrossbar, PrintedTanh
from ..circuits.filters import FirstOrderLearnableFilter, SecondOrderLearnableFilter
from ..nn.module import Module

__all__ = ["DeviceCount", "count_devices"]

INVERTER_TRANSISTORS = 2
INVERTER_RESISTORS = 1
PTANH_TRANSISTORS = 2
PTANH_RESISTORS = 2


@dataclass(frozen=True)
class DeviceCount:
    """Printed device inventory of one circuit."""

    transistors: int = 0
    resistors: int = 0
    capacitors: int = 0

    @property
    def total(self) -> int:
        """Total printed devices."""
        return self.transistors + self.resistors + self.capacitors

    def __add__(self, other: "DeviceCount") -> "DeviceCount":
        return DeviceCount(
            self.transistors + other.transistors,
            self.resistors + other.resistors,
            self.capacitors + other.capacitors,
        )

    def as_row(self) -> tuple:
        """(transistors, resistors, capacitors, total) for table printing."""
        return (self.transistors, self.resistors, self.capacitors, self.total)


def _count_crossbar(xb: PrintedCrossbar) -> DeviceCount:
    inverters = xb.count_inverters()
    return DeviceCount(
        transistors=INVERTER_TRANSISTORS * inverters,
        resistors=xb.count_input_resistors()
        + xb.count_bias_resistors()
        + INVERTER_RESISTORS * inverters,
        capacitors=0,
    )


def _count_ptanh(act: PrintedTanh) -> DeviceCount:
    return DeviceCount(
        transistors=PTANH_TRANSISTORS * act.num_neurons,
        resistors=PTANH_RESISTORS * act.num_neurons,
        capacitors=0,
    )


def _count_filter(flt) -> DeviceCount:
    return DeviceCount(
        transistors=flt.count_transistors(),
        resistors=flt.count_resistors(),
        capacitors=flt.count_capacitors(),
    )


def count_devices(model: Module) -> DeviceCount:
    """Device inventory of a printed model (crossbars, ptanh, filters).

    Walks the module tree, so it works for any composition of the
    printed primitives — TPB stacks, bespoke circuits, single layers.
    Hardware-agnostic modules contribute nothing.
    """
    total = DeviceCount()
    for module in model.modules():
        if isinstance(module, PrintedCrossbar):
            total = total + _count_crossbar(module)
        elif isinstance(module, PrintedTanh):
            total = total + _count_ptanh(module)
        elif isinstance(module, (FirstOrderLearnableFilter, SecondOrderLearnableFilter)):
            total = total + _count_filter(module)
    return total
