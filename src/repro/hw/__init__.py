"""Hardware accounting: device counts and static power (Table III)."""

from .counting import DeviceCount, count_devices
from .power import PowerBreakdown, energy_per_inference, estimate_power
from .report import HardwareRow, format_hardware_table, hardware_report

__all__ = [
    "DeviceCount",
    "count_devices",
    "PowerBreakdown",
    "estimate_power",
    "energy_per_inference",
    "HardwareRow",
    "hardware_report",
    "format_hardware_table",
]
