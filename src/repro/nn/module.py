"""Module/parameter system, mirroring ``torch.nn.Module`` semantics.

Modules register :class:`Parameter` attributes and child modules
automatically through ``__setattr__``; ``parameters()`` walks the tree.
State can be exported/imported as plain numpy dictionaries for
checkpointing (used by the trainer's top-3 model selection).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable leaf of a module."""

    def __init__(self, data, requires_grad: bool = True) -> None:
        super().__init__(data, requires_grad=requires_grad)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all neural / circuit building blocks.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_training", True)

    # -- attribute registration ---------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    # -- traversal -----------------------------------------------------

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its descendants."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        """Yield direct child modules."""
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # -- train/eval mode -------------------------------------------------

    @property
    def training(self) -> bool:
        """Whether the module is in training mode."""
        return self._training

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects variation sampling)."""
        object.__setattr__(self, "_training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # -- gradients -------------------------------------------------------

    def zero_grad(self) -> None:
        """Reset gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # -- precision ---------------------------------------------------------

    def cast_(self, dtype) -> "Module":
        """Cast every parameter to ``dtype`` in place (recursively).

        The precision-policy entry point: ``Trainer.fit`` and the
        evaluation helpers call this so a model built under one policy
        can run under another.  Parameters whose data already has the
        target dtype are left untouched (their array identity is
        preserved); gradients are dropped on any parameter that
        actually changes dtype.
        """
        target = np.dtype(dtype)
        for p in self.parameters():
            if p.data.dtype != target:
                p.data = p.data.astype(target)
                p.grad = None
        return self

    # -- state dict --------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot every parameter's value as a copied numpy array."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from a :meth:`state_dict` snapshot."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            param = own[name]
            # Load in the *parameter's* dtype: a float32-cast model
            # stays float32 even when restoring a float64 snapshot
            # (and vice versa for the float64 oracle).
            value = np.asarray(value, dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.shape}"
                )
            param.data = value.copy()

    # -- forward ----------------------------------------------------------

    def forward(self, *args, **kwargs):
        """Compute the module's output; must be overridden."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {module!r}" for name, module in self._modules.items()]
        body = "\n".join(child_lines)
        header = type(self).__name__
        if body:
            return f"{header}(\n{body}\n)"
        return f"{header}()"
