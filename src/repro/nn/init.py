"""Parameter initialisation schemes.

Thin numpy implementations of the initialisers PyTorch would supply:
Xavier/Glorot (used by the Elman reference model) and uniform/normal
helpers.  Every function takes an explicit ``numpy.random.Generator`` so
the 10-seed experiment protocol of the paper is exactly reproducible.

All draws are *generated* in float64 (a fixed generation dtype keeps
the random streams identical across precision policies) and then cast
once to the active policy's compute dtype — a no-op under the default
float64 policy.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..autograd.precision import compute_dtype

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "uniform",
    "normal",
]


def _fans(shape: Sequence[int]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight of the given shape."""
    if len(shape) < 1:
        raise ValueError("shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = int(shape[0])
    return fan_in, fan_out


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform initialisation: U(-a, a), a = gain * sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    a = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=tuple(shape)).astype(compute_dtype(), copy=False)


def xavier_normal(shape: Sequence[int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal initialisation: N(0, gain^2 * 2/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=tuple(shape)).astype(compute_dtype(), copy=False)


def kaiming_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation: U(-a, a), a = sqrt(6/fan_in)."""
    fan_in, _ = _fans(shape)
    a = np.sqrt(6.0 / fan_in)
    return rng.uniform(-a, a, size=tuple(shape)).astype(compute_dtype(), copy=False)


def uniform(shape: Sequence[int], rng: np.random.Generator, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    """Uniform initialisation on ``[low, high)``."""
    return rng.uniform(low, high, size=tuple(shape)).astype(compute_dtype(), copy=False)


def normal(shape: Sequence[int], rng: np.random.Generator, mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    """Gaussian initialisation."""
    return rng.normal(mean, std, size=tuple(shape)).astype(compute_dtype(), copy=False)
