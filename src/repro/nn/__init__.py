"""Neural-network module system (the ``torch.nn`` substitute)."""

from . import init
from .activation import Identity, ReLU, Sigmoid, Tanh
from .containers import ModuleList, Sequential
from .linear import Linear
from .loss import CrossEntropyLoss, MSELoss, NLLLoss, cross_entropy, mse_loss
from .module import Module, Parameter
from .rnn import ElmanCell, ElmanRNN

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Sequential",
    "ModuleList",
    "Tanh",
    "Sigmoid",
    "ReLU",
    "Identity",
    "ElmanCell",
    "ElmanRNN",
    "CrossEntropyLoss",
    "NLLLoss",
    "MSELoss",
    "cross_entropy",
    "mse_loss",
    "init",
]
