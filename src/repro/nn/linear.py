"""Affine layers for the hardware-agnostic reference models."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Fully-connected layer: ``y = x @ W.T + b``.

    Parameters
    ----------
    in_features, out_features:
        Layer dimensions.
    bias:
        Whether to add a learnable bias.
    rng:
        Generator used for Xavier-uniform initialisation; a fresh default
        generator is used when omitted.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        if bias:
            self.bias: Optional[Parameter] = Parameter(np.zeros(out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        """Apply the affine map to the trailing feature dimension."""
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )
