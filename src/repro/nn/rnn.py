"""Elman recurrent networks — the paper's hardware-agnostic reference.

The paper compares against a 2-layer Elman RNN "as implemented in
PyTorch" (Table I).  :class:`ElmanRNN` follows ``torch.nn.RNN``
semantics: per layer,

    h_t = tanh(W_ih x_t + b_ih + W_hh h_{t-1} + b_hh)

with the sequence convention ``(batch, time, features)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, stack
from . import init
from .containers import ModuleList
from .module import Module, Parameter

__all__ = ["ElmanCell", "ElmanRNN"]


class ElmanCell(Module):
    """Single Elman recurrence step with tanh nonlinearity."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((hidden_size, input_size), rng))
        self.weight_hh = Parameter(init.xavier_uniform((hidden_size, hidden_size), rng))
        self.bias_ih = Parameter(np.zeros(hidden_size))
        self.bias_hh = Parameter(np.zeros(hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """One step: ``x`` is ``(batch, input)``, ``h`` is ``(batch, hidden)``."""
        pre = x @ self.weight_ih.T + self.bias_ih + h @ self.weight_hh.T + self.bias_hh
        return pre.tanh()

    def initial_state(self, batch: int) -> Tensor:
        """Zero initial hidden state for a batch."""
        return Tensor(np.zeros((batch, self.hidden_size)))


class ElmanRNN(Module):
    """Stacked Elman RNN over a ``(batch, time, features)`` sequence.

    Returns the full output sequence of the top layer and the final
    hidden state of every layer.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        cells = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(ElmanCell(in_size, hidden_size, rng=rng))
        self.cells = ModuleList(cells)

    def forward(
        self, x: Tensor, h0: Optional[List[Tensor]] = None
    ) -> Tuple[Tensor, List[Tensor]]:
        """Run the stack over a sequence.

        Parameters
        ----------
        x:
            Input of shape ``(batch, time, input_size)``.
        h0:
            Optional list of per-layer initial states ``(batch, hidden)``.

        Returns
        -------
        outputs:
            Top-layer hidden states, shape ``(batch, time, hidden_size)``.
        final_states:
            Final hidden state per layer.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got shape {x.shape}")
        batch, steps, _ = x.shape
        states: List[Tensor] = (
            list(h0) if h0 is not None else [cell.initial_state(batch) for cell in self.cells]
        )
        if len(states) != self.num_layers:
            raise ValueError("h0 must supply one state per layer")

        top_outputs: List[Tensor] = []
        for t in range(steps):
            inp = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                states[layer] = cell(inp, states[layer])
                inp = states[layer]
            top_outputs.append(inp)
        return stack(top_outputs, axis=1), states
