"""Loss functions for classifier training."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..autograd import Tensor, log_softmax
from .module import Module

__all__ = ["CrossEntropyLoss", "MSELoss", "NLLLoss", "cross_entropy", "mse_loss"]

Labels = Union[np.ndarray, Sequence[int]]


def _check_logits_labels(logits: Tensor, labels: np.ndarray) -> None:
    if logits.ndim != 2:
        raise ValueError(f"logits must be (batch, classes), got {logits.shape}")
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ValueError(
            f"labels must be (batch,) matching logits, got {labels.shape} vs {logits.shape}"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= logits.shape[1]):
        raise ValueError("label index outside the number of classes")


def cross_entropy(logits: Tensor, labels: Labels) -> Tensor:
    """Mean cross-entropy of integer labels against raw logits."""
    labels = np.asarray(labels, dtype=np.int64)
    _check_logits_labels(logits, labels)
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    return (diff * diff).mean()


class CrossEntropyLoss(Module):
    """Module wrapper over :func:`cross_entropy` (expects raw logits)."""

    def forward(self, logits: Tensor, labels: Labels) -> Tensor:
        return cross_entropy(logits, labels)


class NLLLoss(Module):
    """Negative log-likelihood over *log-probabilities*."""

    def forward(self, log_probs: Tensor, labels: Labels) -> Tensor:
        labels = np.asarray(labels, dtype=np.int64)
        _check_logits_labels(log_probs, labels)
        picked = log_probs[np.arange(labels.shape[0]), labels]
        return -picked.mean()


class MSELoss(Module):
    """Module wrapper over :func:`mse_loss`."""

    def forward(self, prediction: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
        return mse_loss(prediction, target)
