"""Stateless activation modules for reference (software) models."""

from __future__ import annotations

from ..autograd import Tensor
from .module import Module

__all__ = ["Tanh", "Sigmoid", "ReLU", "Identity"]


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Elementwise logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class ReLU(Module):
    """Elementwise rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Identity(Module):
    """Pass-through module (useful as a configurable no-op)."""

    def forward(self, x: Tensor) -> Tensor:
        return x
