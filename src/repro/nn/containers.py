"""Module containers: Sequential composition and typed lists."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from ..autograd import Tensor
from .module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = str(i)
            self.register_module(name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]


class ModuleList(Module):
    """A list of modules whose parameters are registered with the parent."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        """Append a module to the list."""
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, *args, **kwargs):
        raise NotImplementedError("ModuleList is a container; call its items")
