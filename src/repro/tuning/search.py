"""Random search with successive halving (the Ray Tune substitute).

:func:`random_search` evaluates sampled configurations with a
user-supplied objective; :func:`successive_halving` adds an ASHA-like
budget schedule — cheap low-budget screening, survivors re-evaluated at
larger budget — which is how we keep per-dataset augmentation tuning
tractable on a laptop-scale CPU budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from .search_space import SearchSpace

__all__ = ["TrialResult", "random_search", "successive_halving", "tune_augmentation"]

Objective = Callable[[Dict[str, float], int], float]


@dataclass
class TrialResult:
    """One evaluated configuration."""

    config: Dict[str, float]
    score: float
    budget: int


def random_search(
    objective: Callable[[Dict[str, float]], float],
    space: SearchSpace,
    n_trials: int = 16,
    seed: int = 0,
) -> List[TrialResult]:
    """Evaluate ``n_trials`` sampled configs; returns results sorted
    best-first (higher score is better)."""
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    rng = np.random.default_rng(seed)
    results = []
    for _ in range(n_trials):
        config = space.sample(rng)
        results.append(TrialResult(config=config, score=float(objective(config)), budget=1))
    return sorted(results, key=lambda r: r.score, reverse=True)


def successive_halving(
    objective: Objective,
    space: SearchSpace,
    n_trials: int = 16,
    budgets: tuple = (1, 2, 4),
    keep_fraction: float = 0.5,
    seed: int = 0,
) -> List[TrialResult]:
    """ASHA-style schedule: evaluate all configs at ``budgets[0]``, keep
    the best ``keep_fraction`` for the next budget, and so on.

    ``objective(config, budget)`` should scale its fidelity (e.g.,
    training epochs) with ``budget``.  Returns the final survivors,
    sorted best-first.
    """
    if not budgets or any(b <= 0 for b in budgets):
        raise ValueError("budgets must be positive")
    if not 0 < keep_fraction < 1:
        raise ValueError("keep_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    population = [space.sample(rng) for _ in range(n_trials)]
    results: List[TrialResult] = []
    for level, budget in enumerate(budgets):
        results = [
            TrialResult(config=c, score=float(objective(c, budget)), budget=budget)
            for c in population
        ]
        results.sort(key=lambda r: r.score, reverse=True)
        if level < len(budgets) - 1:
            survivors = max(1, int(round(len(results) * keep_fraction)))
            population = [r.config for r in results[:survivors]]
    return results


def tune_augmentation(
    dataset_name: str,
    n_trials: int = 8,
    seed: int = 0,
    n_samples: int = 60,
    max_epochs: int = 20,
) -> "TrialResult":
    """Tune the augmentation config for one dataset end-to-end.

    Trains a small ADAPT-pNC per trial with the sampled augmentation
    and scores validation accuracy — the same loop the paper runs in
    Ray Tune, at reduced fidelity.  Returns the best trial.
    """
    from dataclasses import replace as dc_replace

    from ..augment import AugmentationConfig
    from ..core.evaluation import accuracy
    from ..core.models import AdaptPNC
    from ..core.training import Trainer, TrainingConfig
    from ..data import load_dataset
    from .search_space import default_space

    dataset = load_dataset(dataset_name, n_samples=n_samples, seed=seed)
    base_training = dc_replace(TrainingConfig.ci(), max_epochs=max_epochs)

    def objective(config: Dict[str, float]) -> float:
        aug = AugmentationConfig(
            jitter_sigma=config["jitter_sigma"],
            time_warp_strength=config["time_warp_strength"],
            crop_fraction=config["crop_fraction"],
        )
        model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(seed))
        trainer = Trainer(
            model, base_training, variation_aware=True, augmentation=aug, seed=seed
        )
        trainer.fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
        return accuracy(model, dataset.x_val, dataset.y_val)

    results = random_search(objective, default_space(), n_trials=n_trials, seed=seed)
    return results[0]
