"""Hyper-parameter optimisation (the Ray Tune substitute)."""

from .search import TrialResult, random_search, successive_halving, tune_augmentation
from .search_space import (
    Dimension,
    SearchSpace,
    choice,
    default_space,
    loguniform,
    uniform,
)

__all__ = [
    "Dimension",
    "SearchSpace",
    "uniform",
    "loguniform",
    "choice",
    "default_space",
    "TrialResult",
    "random_search",
    "successive_halving",
    "tune_augmentation",
]
