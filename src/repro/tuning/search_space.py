"""Hyper-parameter search spaces for augmentation tuning.

The paper tunes "crop size, noise level, and time warping" per dataset
with Ray Tune (Sec. IV-A3).  A :class:`SearchSpace` maps named
dimensions to samplers; :meth:`sample` draws one
:class:`~repro.augment.AugmentationConfig`-shaped dict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

import numpy as np

__all__ = ["Dimension", "uniform", "loguniform", "choice", "SearchSpace", "default_space"]


@dataclass(frozen=True)
class Dimension:
    """One search dimension, wrapping a sampler callable."""

    sampler: Callable[[np.random.Generator], float]

    def sample(self, rng: np.random.Generator) -> float:
        return self.sampler(rng)


def uniform(low: float, high: float) -> Dimension:
    """Uniform on [low, high)."""
    if high <= low:
        raise ValueError("need high > low")
    return Dimension(lambda rng: float(rng.uniform(low, high)))


def loguniform(low: float, high: float) -> Dimension:
    """Log-uniform on [low, high)."""
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    return Dimension(lambda rng: float(np.exp(rng.uniform(np.log(low), np.log(high)))))


def choice(options) -> Dimension:
    """Uniform over a finite option set."""
    options = list(options)
    if not options:
        raise ValueError("options must be non-empty")
    return Dimension(lambda rng: options[int(rng.integers(len(options)))])


class SearchSpace:
    """Named collection of dimensions."""

    def __init__(self, dimensions: Mapping[str, Dimension]) -> None:
        if not dimensions:
            raise ValueError("search space must be non-empty")
        self.dimensions: Dict[str, Dimension] = dict(dimensions)

    def sample(self, rng: np.random.Generator) -> Dict[str, float]:
        """Draw one configuration dict."""
        return {name: dim.sample(rng) for name, dim in self.dimensions.items()}

    def names(self):
        return list(self.dimensions)


def default_space() -> SearchSpace:
    """The paper's three tuned augmentation dimensions."""
    return SearchSpace(
        {
            "jitter_sigma": loguniform(0.01, 0.2),
            "time_warp_strength": uniform(0.0, 0.35),
            "crop_fraction": uniform(0.6, 1.0),
        }
    )
