"""Command-line interface: ``python -m repro <command> ...``.

Subcommands
-----------
* ``table1|table2|table3|fig5|fig6|fig7|mu`` — regenerate one paper
  artefact at a chosen ``--scale``;
* ``evaluate`` — run the whole suite and write ``results/<scale>/``;
* ``sweep`` — run a whole table/figure campaign through the sharded
  sweep orchestrator (worker processes or a persistent work-stealing
  pool, timeouts, retries, resumable file/SQLite campaign storage);
  ``--watch`` attaches a live terminal dashboard to a running or
  finished campaign (see ``docs/CAMPAIGNS.md``);
* ``query`` — run read-only SQL against the SQLite campaign store
  (cross-campaign questions in one statement; ``--list-examples``
  ships worked queries);
* ``mc-bench`` — measure sequential-vs-batched Monte-Carlo training
  throughput and verify loss equivalence between the two backends;
* ``scan-bench`` — measure the fused filter-scan kernel against the
  node-per-step oracle (SO-LF forward+backward and end-to-end epoch
  wall-clock) and verify loss/gradient equivalence;
* ``dtype-bench`` — measure each precision policy (float64 oracle,
  float32, mixed) through the fused SO-LF kernel and end-to-end
  training, and verify the float64 path is bit-equal across reruns
  while the reduced-precision policies stay within tolerance;
* ``tape-bench`` — measure the tape graph backend (trace-once/replay
  over arena buffers) against the interpreted oracle through an
  end-to-end ``Trainer.fit`` run, and verify the float64
  variation-aware trajectory is bit-equal between backends;
* ``report`` — render a saved ``results.json`` as markdown;
* ``runs`` — inspect telemetry run directories written by
  :class:`repro.telemetry.Run` (``list`` / ``show`` / ``tail``);
* ``export`` — train a model on a dataset and write its compiled
  netlist as a SPICE file;
* ``serve`` — train a model and serve it over HTTP behind the
  micro-batching inference tier (frozen forward plans, bounded queue,
  optional crash-isolated worker processes; see ``docs/SERVING.md``);
* ``stream-eval`` — train a model, then evaluate it *online* over
  drifting/faulty sensor-stream scenarios through the stateful
  :class:`repro.core.StreamingSession` (accuracy-over-time and
  changepoint-recovery curves, ``stream.*`` telemetry, markdown
  report section);
* ``tune`` — tune augmentation hyper-parameters for one dataset.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["build_parser", "main"]


def _config(
    scale: str,
    precision: Optional[str] = None,
    graph_backend: Optional[str] = None,
):
    from dataclasses import replace

    from .core import ExperimentConfig

    config = {
        "paper": ExperimentConfig.paper,
        "ci": ExperimentConfig.ci,
        "smoke": ExperimentConfig.smoke,
    }[scale]()
    if precision is not None:
        config = replace(config, training=replace(config.training, precision=precision))
    if graph_backend is not None:
        config = replace(
            config, training=replace(config.training, graph_backend=graph_backend)
        )
    return config


def _cmd_artifact(args: argparse.Namespace) -> int:
    from .core import (
        format_fig7,
        format_table1,
        run_fig5,
        run_fig6,
        run_fig7_ablation,
        run_mu_extraction,
        run_table1,
        run_table2,
        run_table3,
    )
    from .hw import format_hardware_table
    from .utils import render_table

    config = _config(
        args.scale, precision=args.precision, graph_backend=args.graph_backend
    )
    name = args.command
    if name == "table1":
        print(format_table1(run_table1(config, verbose=args.verbose)))
    elif name == "table2":
        timings = run_table2(config)
        print(render_table(["Model", "s/step"], [[k, f"{v:.4f}"] for k, v in timings.items()]))
    elif name == "table3":
        print(format_hardware_table(run_table3(config)))
    elif name == "fig5":
        result = run_fig5(config)
        print(render_table(["Condition", "Accuracy"], [[k, f"{v:.3f}"] for k, v in result.items()]))
    elif name == "fig6":
        series = run_fig6()
        print(render_table(["Augmentation", "First 4 samples"],
                           [[k, ", ".join(f"{v:.2f}" for v in s[:4])] for k, s in series.items()]))
    elif name == "fig7":
        print(format_fig7(run_fig7_ablation(config, verbose=args.verbose)))
    elif name == "mu":
        result = run_mu_extraction(samples=args.samples)
        print(render_table(["Statistic", "Value"], [[k, f"{v:.3f}"] for k, v in result.items()]))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .report import render_report_file

    text = render_report_file(args.results, args.output)
    if args.output is None:
        print(text)
    else:
        print(f"wrote {args.output}")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import json

    from .telemetry import is_run_dir, list_runs, tail_events

    if args.runs_command == "list":
        summaries = list_runs(args.root)
        if not summaries:
            print(f"no runs under {args.root}")
            return 0
        from .utils import render_table

        rows = [
            [
                s.run_id,
                s.status,
                s.created_iso,
                str(s.epochs),
                "-" if s.last_val_loss is None else f"{s.last_val_loss:.4g}",
                str(s.events),
            ]
            for s in summaries
        ]
        print(
            render_table(
                ["Run", "Status", "Created", "Epochs", "Val loss", "Events"], rows
            )
        )
        return 0

    if not is_run_dir(args.run_dir):
        print(f"{args.run_dir} is not a run directory (no run.json manifest)")
        return 1

    if args.runs_command == "show":
        from .report import render_run

        print(render_run(args.run_dir))
        return 0

    # tail: last N raw events as JSON lines.
    for event in tail_events(args.run_dir, n=args.n):
        print(json.dumps(event, sort_keys=True))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import numpy as np

    from .augment import default_config
    from .compile import compile_model
    from .core import AdaptPNC, Trainer, TrainingConfig
    from .data import load_dataset
    from .spice import circuit_to_spice

    dataset = load_dataset(args.dataset, n_samples=args.samples, seed=args.seed)
    model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(args.seed))
    trainer = Trainer(
        model,
        TrainingConfig.ci(),
        variation_aware=True,
        augmentation=default_config(args.dataset),
        seed=args.seed,
    )
    trainer.fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
    compiled = compile_model(model, decouple=not args.coupled)
    text = circuit_to_spice(compiled.circuit, title=f"adapt_pnc_{args.dataset}")
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"trained on {args.dataset} and wrote netlist to {args.output}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .tuning import tune_augmentation

    best = tune_augmentation(
        args.dataset, n_trials=args.trials, seed=args.seed, max_epochs=args.epochs
    )
    print(f"best validation accuracy {best.score:.3f} with config:")
    for key, value in best.config.items():
        print(f"  {key} = {value:.4f}")
    return 0


def _cmd_mc_bench(args: argparse.Namespace) -> int:
    import json

    from .core import TrainingConfig, format_mc_benchmark, run_mc_benchmark

    config = TrainingConfig.ci() if args.scale == "ci" else TrainingConfig.paper()
    record = run_mc_benchmark(
        draws_list=tuple(args.draws),
        n_samples=args.samples,
        repeats=args.repeats,
        seed=args.seed,
        config=config,
        scan_backend=args.scan_backend,
    )
    print(format_mc_benchmark(record))
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump({"mc_vectorization": record}, fh, indent=2)
        print(f"wrote {args.output}")
    return 0 if record["equivalent"] else 1


def _cmd_scan_bench(args: argparse.Namespace) -> int:
    import json

    from .core import format_scan_benchmark, run_scan_benchmark

    record = run_scan_benchmark(
        seq_len=args.seq_len,
        batch=args.batch,
        draws=args.draws,
        num_filters=args.filters,
        repeats=args.repeats,
        seed=args.seed,
        train_epochs=args.epochs,
        include_training=not args.no_training,
    )
    print(format_scan_benchmark(record))
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump({"filter_scan": record}, fh, indent=2)
        print(f"wrote {args.output}")
    return 0 if record["equivalent"] else 1


def _cmd_dtype_bench(args: argparse.Namespace) -> int:
    import json

    from .core import format_dtype_benchmark, run_dtype_benchmark

    record = run_dtype_benchmark(
        seq_len=args.seq_len,
        batch=args.batch,
        draws=args.draws,
        num_filters=args.filters,
        repeats=args.repeats,
        seed=args.seed,
        train_epochs=args.epochs,
        include_training=not args.no_training,
        policies=args.policies,
    )
    print(format_dtype_benchmark(record))
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump({"precision": record}, fh, indent=2)
        print(f"wrote {args.output}")
    return 0 if record["equivalent"] else 1


def _cmd_tape_bench(args: argparse.Namespace) -> int:
    import json

    from .core import format_tape_benchmark, run_tape_benchmark

    record = run_tape_benchmark(
        batch=args.batch,
        seq_len=args.seq_len,
        epochs=args.epochs,
        repeats=args.repeats,
        seed=args.seed,
        precision=args.precision,
        oracle_epochs=args.oracle_epochs,
    )
    print(format_tape_benchmark(record))
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump(record, fh, indent=2)
        print(f"wrote {args.output}")
    return 0 if record["tape_compiler"]["equivalent"] else 1


def _resolve_watch_run(run_root: str, run: str) -> Optional[str]:
    """Resolve ``--watch [RUN]`` to an ``events.jsonl`` path.

    ``RUN`` may be a run directory, an ``events.jsonl`` path, or
    ``"latest"`` (the newest run under ``run_root`` with an event
    stream, preferring sweep runs).
    """
    import pathlib

    from .telemetry import EVENTS_FILENAME

    if run != "latest":
        path = pathlib.Path(run)
        if path.is_file():
            return str(path)
        if (path / EVENTS_FILENAME).is_file():
            return str(path / EVENTS_FILENAME)
        return None
    root = pathlib.Path(run_root)
    candidates = sorted(
        root.glob(f"*/{EVENTS_FILENAME}"),
        key=lambda p: (("sweep" in p.parent.name), p.stat().st_mtime),
    )
    return str(candidates[-1]) if candidates else None


def _cmd_sweep(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from . import telemetry
    from .core import format_fig7, format_table1, run_fig7_ablation, run_table1
    from .parallel import SweepOptions

    if args.watch is not None:
        from .parallel import watch

        events_path = _resolve_watch_run(args.run_root, args.watch)
        if events_path is None:
            print(f"no run with an event stream found for --watch {args.watch!r}")
            return 1
        dashboard = watch(
            events_path, interval_s=args.watch_interval, once=args.watch_once
        )
        return 1 if dashboard.failed else 0

    config = _config(
        args.config, precision=args.precision, graph_backend=args.graph_backend
    )
    options = SweepOptions(
        executor=args.executor,
        max_workers=args.max_workers,
        timeout_s=args.timeout,
        retries=args.retries,
        backoff_s=args.backoff,
        cache_dir=None if args.no_cache else args.cache_dir,
        store=args.store,
        pool_restarts=args.pool_restarts,
    )
    run_ctx = (
        nullcontext(None)
        if args.no_telemetry
        else telemetry.Run(root=args.run_root, name=f"sweep-{args.artefact}")
    )
    with run_ctx as run:
        if args.artefact == "table1":
            table = run_table1(config, verbose=args.verbose, sweep=options)
            print(format_table1(table))
            entries = [entry for row in table.values() for entry in row.values()]
        else:
            results = run_fig7_ablation(config, verbose=args.verbose, sweep=options)
            print(format_fig7(results))
            entries = [entry for row in results.values() for entry in row.values()]
        n_failed = sum(entry.n_failed for entry in entries)
        if run is not None:
            print(f"telemetry: {run.dir}")
    if n_failed:
        print(f"WARNING: {n_failed} sweep cells failed after retries (see events.jsonl)")
        return 1
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json
    import sqlite3

    from .parallel import EXAMPLE_QUERIES, run_query

    if args.list_examples:
        for name in sorted(EXAMPLE_QUERIES):
            print(f"-- {name}")
            print(EXAMPLE_QUERIES[name])
            print()
        return 0
    sql = EXAMPLE_QUERIES[args.example] if args.example else args.sql
    if not sql:
        print("provide a SQL statement, --example NAME, or --list-examples")
        return 2
    try:
        columns, rows = run_query(args.db, sql)
    except FileNotFoundError as exc:
        print(f"error: {exc} (run a sweep with --store sqlite first)")
        return 1
    except sqlite3.Error as exc:
        print(f"sql error: {exc}")
        return 1
    if args.as_json:
        for row in rows:
            print(json.dumps(dict(zip(columns, row)), default=str))
        return 0
    from .utils import render_table

    print(render_table(columns, [[_cell_text(v) for v in row] for row in rows]))
    print(f"{len(rows)} row{'s' if len(rows) != 1 else ''}")
    return 0


def _cell_text(value) -> str:
    """Compact text for one query-result cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _serve_self_test(server, name: str, dataset, n: int) -> List[str]:
    """Fire ``n`` local HTTP requests at a freshly started server and
    return a list of failure descriptions (empty on success)."""
    import http.client
    import json

    import numpy as np

    host, port = server.server_address[:2]

    def post(path, body):
        conn = http.client.HTTPConnection(host, port, timeout=120.0)
        try:
            conn.request(
                "POST", path, json.dumps(body), {"Content-Type": "application/json"}
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    failures = []
    for i in range(n):
        series = np.asarray(dataset.x_val[i % len(dataset.x_val)]).tolist()
        status, payload = post("/predict", {"model": name, "series": series})
        if status != 200 or "prediction" not in payload:
            failures.append(f"/predict #{i}: HTTP {status} {payload}")
    series = np.asarray(dataset.x_val[0]).tolist()
    status, payload = post(
        "/predict_mc", {"model": name, "series": series, "draws": 8}
    )
    if status != 200 or "confidence" not in payload:
        failures.append(f"/predict_mc: HTTP {status} {payload}")
    status, payload = post("/predict", {"model": name, "series": "not a series"})
    if status != 400:
        failures.append(f"malformed payload: expected HTTP 400, got {status}")
    return failures


def _cmd_serve(args: argparse.Namespace) -> int:
    from contextlib import nullcontext
    from dataclasses import replace

    import numpy as np

    from . import telemetry
    from .augment import default_config
    from .core import AdaptPNC, Trainer, TrainingConfig
    from .data import load_dataset
    from .serve import MicroBatchService, ServeHTTPServer, ServeOptions

    dataset = load_dataset(args.dataset, n_samples=args.samples, seed=args.seed)
    model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(args.seed))
    trainer = Trainer(
        model,
        replace(TrainingConfig.ci(), max_epochs=args.epochs),
        variation_aware=True,
        augmentation=default_config(args.dataset),
        seed=args.seed,
    )
    trainer.fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)

    options = ServeOptions(
        window_s=args.window_ms / 1e3,
        max_batch=args.max_batch,
        queue_size=args.queue_size,
        max_sessions=args.max_sessions,
        stream_window_s=(
            None if args.stream_window_ms is None else args.stream_window_ms / 1e3
        ),
        workers=args.workers,
        precision=args.precision,
    )
    run_ctx = (
        nullcontext(None)
        if args.no_telemetry
        else telemetry.Run(root=args.run_root, name=f"serve-{args.dataset}")
    )
    with run_ctx as run:
        with MicroBatchService(options) as service:
            service.register(args.dataset, model)
            with ServeHTTPServer(service, host=args.host, port=args.port) as server:
                print(f"serving {args.dataset!r} at {server.url}")
                if run is not None:
                    print(f"telemetry: {run.dir}")
                if args.self_test:
                    server.start_background()
                    failures = _serve_self_test(
                        server, args.dataset, dataset, args.self_test
                    )
                    snapshot = service.emit_stats()
                    print(
                        f"self-test: {snapshot['requests']} requests, "
                        f"p50 {snapshot['latency_ms']['p50']:.2f} ms, "
                        f"p99 {snapshot['latency_ms']['p99']:.2f} ms, "
                        f"mean batch {snapshot['mean_batch_size']:.1f}"
                    )
                    for failure in failures:
                        print(f"FAIL: {failure}")
                    return 1 if failures else 0
                try:
                    server.serve_forever()
                except KeyboardInterrupt:
                    print("\nshutting down")
    return 0


def _cmd_stream_eval(args: argparse.Namespace) -> int:
    import json
    from contextlib import nullcontext
    from dataclasses import replace

    import numpy as np

    from . import telemetry
    from .augment import default_config
    from .compile import compile_plan
    from .core import AdaptPNC, Trainer, TrainingConfig, evaluate_streaming
    from .data import load_dataset, make_stream
    from .report import _streaming_section

    dataset = load_dataset(args.dataset, n_samples=args.samples, seed=args.seed)
    model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(args.seed))
    trainer = Trainer(
        model,
        replace(TrainingConfig.ci(), max_epochs=args.epochs),
        variation_aware=True,
        augmentation=default_config(args.dataset),
        seed=args.seed,
    )
    trainer.fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
    plan = compile_plan(model, precision=args.precision)

    run_ctx = (
        nullcontext(None)
        if args.no_telemetry
        else telemetry.Run(root=args.run_root, name=f"stream-{args.dataset}")
    )
    results = []
    with run_ctx as run:
        for scenario in args.scenarios:
            stream = make_stream(scenario, args.dataset, seed=args.seed)
            results.append(
                evaluate_streaming(plan, stream, chunk_size=args.chunk_size)
            )
        if run is not None:
            print(f"telemetry: {run.dir}")
    record = {
        "streaming": {
            "model": plan.model_class,
            "dataset": args.dataset,
            "chunk_size": args.chunk_size,
            "scenarios": [r.to_record() for r in results],
        }
    }
    print("\n".join(_streaming_section(record)))
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump(record, fh, indent=2)
        print(f"wrote {args.output}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    # Delegates to the example script's logic without importing it.
    import subprocess

    cmd = [sys.executable, "examples/run_full_evaluation.py", "--scale", args.scale]
    return subprocess.call(cmd)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="ADAPT-pNC reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from .autograd.precision import PRECISION_POLICIES
    from .core import GRAPH_BACKENDS
    from .data.streams import STREAM_SCENARIOS
    from .parallel.orchestrator import EXECUTORS
    from .parallel.store import EXAMPLE_QUERIES, STORE_BACKENDS

    for name in ("table1", "table2", "table3", "fig5", "fig6", "fig7", "mu"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--scale", choices=("smoke", "ci", "paper"), default="smoke")
        p.add_argument(
            "--precision",
            choices=PRECISION_POLICIES,
            default=None,
            help="training precision policy (default: the config preset's)",
        )
        p.add_argument(
            "--graph-backend",
            choices=GRAPH_BACKENDS,
            default=None,
            help="autograd graph backend (default: the config preset's)",
        )
        p.add_argument("--verbose", action="store_true")
        p.add_argument("--samples", type=int, default=10, help="mu-study sample count")
        p.set_defaults(func=_cmd_artifact)

    p = sub.add_parser("report", help="render results.json as markdown")
    p.add_argument("results", help="path to results.json")
    p.add_argument("--output", default=None, help="write markdown here (stdout otherwise)")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("runs", help="inspect telemetry run directories")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    rp = runs_sub.add_parser("list", help="list runs under a root directory")
    rp.add_argument("--root", default="runs", help="directory holding run directories")
    rp.set_defaults(func=_cmd_runs)
    rp = runs_sub.add_parser("show", help="render one run as a markdown summary")
    rp.add_argument("run_dir", help="path to a run directory")
    rp.set_defaults(func=_cmd_runs)
    rp = runs_sub.add_parser("tail", help="print the last N events of a run")
    rp.add_argument("run_dir", help="path to a run directory")
    rp.add_argument("-n", type=int, default=10, help="number of events")
    rp.set_defaults(func=_cmd_runs)

    p = sub.add_parser("export", help="train + compile a model to a SPICE netlist")
    p.add_argument("dataset")
    p.add_argument("--output", default="adapt_pnc.cir")
    p.add_argument("--samples", type=int, default=90)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--coupled", action="store_true", help="omit inter-stage buffers")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("tune", help="tune augmentation hyper-parameters")
    p.add_argument("dataset")
    p.add_argument("--trials", type=int, default=8)
    p.add_argument("--epochs", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "mc-bench", help="benchmark batched vs sequential Monte-Carlo training"
    )
    p.add_argument("--scale", choices=("ci", "paper"), default="ci")
    p.add_argument(
        "--draws", type=int, nargs="+", default=[2, 4, 8], help="MC draw counts to sweep"
    )
    p.add_argument("--samples", type=int, default=24, help="dataset size")
    p.add_argument("--repeats", type=int, default=3, help="timed repeats per backend")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--scan-backend",
        choices=("fused", "unfused"),
        default="fused",
        help="filter-recurrence kernel used by both MC backends",
    )
    p.add_argument("--output", default=None, help="write the record as JSON here")
    p.set_defaults(func=_cmd_mc_bench)

    p = sub.add_parser(
        "scan-bench", help="benchmark fused vs unfused filter-scan kernels"
    )
    p.add_argument("--seq-len", type=int, default=64, help="sequence length T")
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--draws", type=int, default=8, help="Monte-Carlo draws")
    p.add_argument("--filters", type=int, default=8, help="filter-bank width")
    p.add_argument("--repeats", type=int, default=5, help="timed repeats per backend")
    p.add_argument("--epochs", type=int, default=5, help="end-to-end training epochs")
    p.add_argument(
        "--no-training", action="store_true", help="skip the Trainer.fit comparison"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default=None, help="write the record as JSON here")
    p.set_defaults(func=_cmd_scan_bench)

    p = sub.add_parser(
        "dtype-bench",
        help="benchmark precision policies (float64 oracle vs float32/mixed)",
    )
    p.add_argument("--seq-len", type=int, default=96, help="sequence length T")
    p.add_argument("--batch", type=int, default=48)
    p.add_argument("--draws", type=int, default=12, help="Monte-Carlo draws")
    p.add_argument("--filters", type=int, default=8, help="filter-bank width")
    p.add_argument("--repeats", type=int, default=5, help="timed repeats per policy")
    p.add_argument("--epochs", type=int, default=4, help="end-to-end training epochs")
    p.add_argument(
        "--policies",
        nargs="+",
        choices=PRECISION_POLICIES,
        default=None,
        help="precision policies to benchmark (default: all; float64 required)",
    )
    p.add_argument(
        "--no-training", action="store_true", help="skip the Trainer.fit comparison"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default=None, help="write the record as JSON here")
    p.set_defaults(func=_cmd_dtype_bench)

    p = sub.add_parser(
        "tape-bench",
        help="benchmark the tape graph backend against the interpreted oracle",
    )
    p.add_argument("--batch", type=int, default=16, help="dataset size")
    p.add_argument("--seq-len", type=int, default=8, help="sequence length T")
    p.add_argument("--epochs", type=int, default=150, help="timed training epochs")
    p.add_argument("--repeats", type=int, default=5, help="timed fits per backend")
    p.add_argument(
        "--precision",
        choices=PRECISION_POLICIES,
        default="float32",
        help="precision policy of the timed (throughput) fits",
    )
    p.add_argument(
        "--oracle-epochs",
        type=int,
        default=10,
        help="epochs of the float64 bit-equality check",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default=None, help="write the record as JSON here")
    p.set_defaults(func=_cmd_tape_bench)

    p = sub.add_parser(
        "sweep", help="run a sharded (or serial-oracle) experiment sweep"
    )
    p.add_argument(
        "--artefact",
        choices=("table1", "fig7"),
        default="table1",
        help="which cell grid to sweep",
    )
    p.add_argument(
        "--config",
        choices=("smoke", "ci", "paper"),
        default="smoke",
        help="experiment scale (same presets as the artefact commands)",
    )
    p.add_argument(
        "--precision",
        choices=PRECISION_POLICIES,
        default=None,
        help="training precision policy (default: the config preset's)",
    )
    p.add_argument(
        "--graph-backend",
        choices=GRAPH_BACKENDS,
        default=None,
        help="autograd graph backend (default: the config preset's)",
    )
    p.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="parallel",
        help="serial oracle, spawn-per-cell workers, or a persistent "
        "work-stealing pool (all bit-equal)",
    )
    p.add_argument("--max-workers", type=int, default=2, help="worker process budget")
    p.add_argument(
        "--timeout", type=float, default=None, help="per-cell timeout in seconds"
    )
    p.add_argument(
        "--retries", type=int, default=1, help="relaunch budget per failed cell"
    )
    p.add_argument(
        "--backoff", type=float, default=0.1, help="base backoff before a retry (s)"
    )
    p.add_argument(
        "--cache-dir",
        default="sweep_cache",
        help="campaign storage root (sweeps resume from it)",
    )
    p.add_argument(
        "--store",
        choices=STORE_BACKENDS,
        default="files",
        help="storage backend under --cache-dir: JSON files or the "
        "queryable SQLite campaign store",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the resume cache entirely"
    )
    p.add_argument(
        "--pool-restarts",
        type=int,
        default=2,
        help="worker replacements the pool executor tolerates per campaign",
    )
    p.add_argument(
        "--watch",
        nargs="?",
        const="latest",
        default=None,
        metavar="RUN",
        help="render a live dashboard for RUN (a run dir or events.jsonl; "
        "default: the latest sweep run under --run-root) instead of "
        "launching a campaign",
    )
    p.add_argument(
        "--watch-interval",
        type=float,
        default=0.5,
        help="dashboard repaint interval in seconds",
    )
    p.add_argument(
        "--watch-once",
        action="store_true",
        help="render one dashboard frame and exit (no TTY needed)",
    )
    p.add_argument(
        "--run-root", default="runs", help="telemetry root for the sweep run directory"
    )
    p.add_argument(
        "--no-telemetry", action="store_true", help="do not open a telemetry run"
    )
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "query", help="run read-only SQL against the SQLite campaign store"
    )
    p.add_argument(
        "sql",
        nargs="?",
        default=None,
        help="one SQL statement (see --list-examples for schemas in action)",
    )
    p.add_argument(
        "--db",
        default="sweep_cache/campaigns.sqlite",
        help="campaign database path (written by sweep --store sqlite)",
    )
    p.add_argument(
        "--example",
        choices=sorted(EXAMPLE_QUERIES),
        default=None,
        help="run a named worked example instead of positional SQL",
    )
    p.add_argument(
        "--list-examples",
        action="store_true",
        help="print every worked example query and exit",
    )
    p.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit one JSON object per row instead of a table",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "serve", help="train a model and serve it over HTTP (micro-batched)"
    )
    p.add_argument("--dataset", default="Slope")
    p.add_argument("--samples", type=int, default=60, help="dataset size")
    p.add_argument("--epochs", type=int, default=8, help="training epochs")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000, help="0 binds an ephemeral port")
    p.add_argument(
        "--window-ms", type=float, default=2.0, help="micro-batching window"
    )
    p.add_argument("--max-batch", type=int, default=32, help="largest coalesced batch")
    p.add_argument("--queue-size", type=int, default=128, help="bounded request queue")
    p.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="streaming-session LRU cap = fleet rows per model",
    )
    p.add_argument(
        "--stream-window-ms",
        type=float,
        default=None,
        help="fleet coalesce window for /predict_stream chunks "
        "(default: --window-ms; 0 disables coalescing)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="crash-isolated plan worker processes (0 = in-process)",
    )
    p.add_argument(
        "--precision",
        choices=PRECISION_POLICIES,
        default=None,
        help="plan compilation precision (default: the active policy)",
    )
    p.add_argument(
        "--run-root", default="runs", help="telemetry root for the serve run directory"
    )
    p.add_argument(
        "--no-telemetry", action="store_true", help="do not open a telemetry run"
    )
    p.add_argument(
        "--self-test",
        type=int,
        default=0,
        metavar="N",
        help="serve in the background, fire N local requests, report and exit",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "stream-eval",
        help="train a model and evaluate it online over sensor-stream scenarios",
    )
    p.add_argument("--dataset", default="Slope")
    p.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(STREAM_SCENARIOS),
        default=["drift", "dropout"],
        help="stream scenarios to evaluate (seeded, replayable)",
    )
    p.add_argument("--samples", type=int, default=60, help="training dataset size")
    p.add_argument("--epochs", type=int, default=8, help="training epochs")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--chunk-size",
        type=int,
        default=16,
        help="steps per StreamingSession.process call (results are "
        "chunking-invariant; telemetry granularity is not)",
    )
    p.add_argument(
        "--precision",
        choices=PRECISION_POLICIES,
        default=None,
        help="plan compilation precision (default: the active policy)",
    )
    p.add_argument("--output", default=None, help="write the record as JSON here")
    p.add_argument(
        "--run-root", default="runs", help="telemetry root for the stream run directory"
    )
    p.add_argument(
        "--no-telemetry", action="store_true", help="do not open a telemetry run"
    )
    p.set_defaults(func=_cmd_stream_eval)

    p = sub.add_parser("evaluate", help="run the full evaluation suite")
    p.add_argument("--scale", choices=("smoke", "ci", "paper"), default="ci")
    p.set_defaults(func=_cmd_evaluate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. head).
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
