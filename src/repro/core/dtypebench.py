"""Precision-policy throughput and equivalence measurement.

One shared harness behind ``benchmarks/bench_precision.py`` and the
``python -m repro dtype-bench`` CLI subcommand.  Three measurements per
precision policy (:mod:`repro.autograd.precision`):

1. **SO-LF kernel** — forward+backward through one fused
   :class:`~repro.circuits.SecondOrderLearnableFilter` bank under each
   policy, with the *same* ε/μ/V₀ random streams (variation draws are
   generated in float64 and cast once, so every policy sees the rounded
   view of one stream).  Reported as per-policy wall-clock plus the
   float32-over-float64 speedup.
2. **End-to-end training** — a short variation-aware + augmented
   ``Trainer.fit`` run per policy on identical data/seeds, recording
   epoch wall-clock and post-training accuracy under ±10 % Monte-Carlo
   variation (the paper's measurement protocol).
3. **Oracle / equivalence checks** — the float64 policy is the
   bit-equal reference: two independent float64 constructions must
   produce *exactly* identical losses and parameter gradients (delta
   0.0, not merely small).  float32 and mixed must agree with the
   float64 oracle within :data:`DTYPE_LOSS_RTOL` on losses and within
   :data:`DTYPE_ACCURACY_TOL_PP` percentage points on smoke-dataset
   accuracy.

The record is JSON-serialisable; ``equivalent`` summarises all three
checks and drives the CLI exit code.
"""

from __future__ import annotations

import gc
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..augment import AugmentationConfig
from ..autograd import Tensor
from ..autograd.precision import PRECISION_POLICIES, resolve_policy, use_precision
from ..circuits import (
    SecondOrderLearnableFilter,
    UniformVariation,
    VariationSampler,
)
from ..utils.timing import Stopwatch, mc_counters
from .. import telemetry
from .evaluation import evaluate_under_variation
from .models import AdaptPNC
from .training import Trainer, TrainingConfig

__all__ = [
    "run_dtype_benchmark",
    "format_dtype_benchmark",
    "DTYPE_LOSS_RTOL",
    "DTYPE_ACCURACY_TOL_PP",
]

#: Relative loss-agreement tolerance for the reduced-precision policies
#: against the float64 oracle (single forward and first training epoch;
#: float32 rounding is ~1e-7 per element, summation keeps it well under
#: this).
DTYPE_LOSS_RTOL = 1e-4

#: Maximum admissible Monte-Carlo accuracy drop (percentage points) of
#: a reduced-precision policy against the float64 oracle on the smoke
#: workload — the paper-level "no accuracy cost" acceptance bound.
DTYPE_ACCURACY_TOL_PP = 0.5


def _make_filter(num_filters: int, seed: int) -> SecondOrderLearnableFilter:
    sampler = VariationSampler(
        model=UniformVariation(0.10), rng=np.random.default_rng(seed + 7)
    )
    return SecondOrderLearnableFilter(
        num_filters,
        sampler=sampler,
        rng=np.random.default_rng(seed),
        scan_backend="fused",
    )


def _solf_pass(
    flt: SecondOrderLearnableFilter, x: Tensor, draws: int, seed: int
) -> Dict[str, object]:
    """One forward+backward through the SO-LF bank with reseeded draws."""
    flt.zero_grad()
    flt.sampler.reseed(seed + 31)
    with Stopwatch() as fw:
        with flt.sampler.batched(draws):
            out = flt(x)
    loss = float(np.mean(np.asarray(out.data, dtype=np.float64) ** 2))
    grad_seed = (2.0 * out.data / out.data.size).astype(out.data.dtype)
    with Stopwatch() as bw:
        out.backward(grad_seed)
    grads = {name: p.grad.copy() for name, p in flt.named_parameters()}
    return {
        "forward_s": fw.elapsed,
        "backward_s": bw.elapsed,
        "loss": loss,
        "grads": grads,
    }


def _bench_solf(
    seq_len: int,
    batch: int,
    draws: int,
    num_filters: int,
    repeats: int,
    seed: int,
    policies: Sequence[str],
) -> Tuple[Dict, Dict[str, Dict[str, np.ndarray]]]:
    """Best-of-``repeats`` SO-LF forward+backward per precision policy.

    The input series is generated once in float64 and recast per policy,
    so every policy classifies the rounded view of one dataset.  Returns
    the timing record plus the per-policy gradient dict (consumed by the
    oracle check).
    """
    rng = np.random.default_rng(seed)
    x64 = rng.uniform(-1.0, 1.0, size=(batch, seq_len, num_filters))

    per_policy: Dict[str, Dict] = {}
    grads: Dict[str, Dict[str, np.ndarray]] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for name in policies:
            with use_precision(name) as policy:
                flt = _make_filter(num_filters, seed)
                x = Tensor(x64)  # cast to the policy's compute dtype
                _solf_pass(flt, x, draws, seed)  # warm-up
                best_f: List[float] = []
                best_b: List[float] = []
                last: Dict[str, object] = {}
                for _ in range(repeats):
                    last = _solf_pass(flt, x, draws, seed)
                    best_f.append(last["forward_s"])
                    best_b.append(last["backward_s"])
                per_policy[name] = {
                    "forward_s": min(best_f),
                    "backward_s": min(best_b),
                    "step_s": min(best_f) + min(best_b),
                    "loss": last["loss"],
                    "compute_dtype": str(np.dtype(policy.compute)),
                }
                grads[name] = last["grads"]
                mc_counters.record_precision(
                    str(np.dtype(policy.compute)), min(best_f) + min(best_b), draws
                )
    finally:
        if gc_was_enabled:
            gc.enable()

    record: Dict = {
        "seq_len": int(seq_len),
        "batch": int(batch),
        "draws": int(draws),
        "num_filters": int(num_filters),
        "repeats": int(repeats),
        "by_policy": per_policy,
    }
    if "float64" in per_policy:
        base = per_policy["float64"]["step_s"]
        for name in policies:
            if name != "float64":
                record[f"speedup_{name}"] = base / max(
                    per_policy[name]["step_s"], 1e-12
                )
    return record, grads


def _oracle_check(
    seq_len: int, batch: int, draws: int, num_filters: int, seed: int
) -> Dict:
    """Bit-equality of two independent float64 constructions.

    The float64 policy *is* the historical default path, so rebuilding
    the filter bank and replaying the pass must reproduce every bit:
    loss delta exactly 0.0 and every parameter gradient exactly equal.
    Any nonzero delta means the policy threading changed the oracle's
    arithmetic — the hard failure mode this benchmark exists to catch.
    """
    rng = np.random.default_rng(seed)
    x64 = rng.uniform(-1.0, 1.0, size=(batch, seq_len, num_filters))
    passes = []
    for _ in range(2):
        with use_precision("float64"):
            flt = _make_filter(num_filters, seed)
            passes.append(_solf_pass(flt, Tensor(x64), draws, seed))
    first, second = passes
    loss_delta = abs(first["loss"] - second["loss"])
    grad_delta = max(
        float(np.max(np.abs(first["grads"][name] - second["grads"][name])))
        for name in first["grads"]
    )
    return {
        "loss_delta": loss_delta,
        "max_abs_grad_delta": grad_delta,
        "bit_equal": bool(loss_delta == 0.0 and grad_delta == 0.0),
    }


def _bench_training(
    epochs: int,
    n_samples: int,
    seq_len: int,
    n_classes: int,
    seed: int,
    policies: Sequence[str],
    mc_eval_samples: int = 5,
) -> Dict:
    """Variation-aware + augmented ``Trainer.fit`` per precision policy.

    Identical synthetic smoke data and seeds for every policy; the data
    is generated once in float64 (``Trainer.fit`` recasts it to each
    policy's compute dtype).  Post-training accuracy is measured under
    ±10 % Monte-Carlo variation via :func:`evaluate_under_variation`,
    evaluated under the same policy the model was trained with.
    """
    rng = np.random.default_rng(seed + 1)
    x = rng.uniform(-1.0, 1.0, size=(n_samples, seq_len))
    y = rng.integers(0, n_classes, size=n_samples)
    split = max(1, n_samples // 5)
    x_train, y_train = x[split:], y[split:]
    x_val, y_val = x[:split], y[:split]

    per_policy: Dict[str, Dict] = {}
    for name in policies:
        model = AdaptPNC(n_classes, rng=np.random.default_rng(seed))
        config = replace(TrainingConfig.ci(), max_epochs=epochs, precision=name)
        trainer = Trainer(
            model,
            config,
            variation_aware=True,
            augmentation=AugmentationConfig(),
            seed=seed,
        )
        start = time.perf_counter()
        history = trainer.fit(x_train, y_train, x_val, y_val, checkpoint_every=0)
        elapsed = time.perf_counter() - start
        result = evaluate_under_variation(
            model,
            x_val,
            y_val,
            mc_samples=mc_eval_samples,
            seed=seed,
            precision=name,
        )
        per_policy[name] = {
            "total_s": elapsed,
            "epochs": history.epochs_run,
            "epoch_s": elapsed / max(history.epochs_run, 1),
            "first_epoch_loss": history.train_loss[0],
            "final_train_loss": history.train_loss[-1],
            "mc_accuracy": result.mean,
        }

    record: Dict = {
        "epochs": int(epochs),
        "n_samples": int(n_samples),
        "seq_len": int(seq_len),
        "mc_eval_samples": int(mc_eval_samples),
        "by_policy": per_policy,
    }
    if "float64" in per_policy:
        base = per_policy["float64"]
        for name in policies:
            if name == "float64":
                continue
            entry = per_policy[name]
            record[f"epoch_speedup_{name}"] = base["epoch_s"] / max(
                entry["epoch_s"], 1e-12
            )
            record[f"accuracy_delta_pp_{name}"] = 100.0 * abs(
                entry["mc_accuracy"] - base["mc_accuracy"]
            )
            denom = max(abs(base["first_epoch_loss"]), 1e-12)
            record[f"first_epoch_rel_loss_delta_{name}"] = (
                abs(entry["first_epoch_loss"] - base["first_epoch_loss"]) / denom
            )
    return record


def run_dtype_benchmark(
    seq_len: int = 96,
    batch: int = 48,
    draws: int = 12,
    num_filters: int = 8,
    repeats: int = 5,
    seed: int = 0,
    train_epochs: int = 4,
    train_samples: int = 32,
    train_seq_len: int = 48,
    n_classes: int = 3,
    include_training: bool = True,
    policies: Optional[Sequence[str]] = None,
) -> Dict:
    """Measure per-precision-policy throughput and verify equivalence.

    Returns a record with a ``solf`` section (fused SO-LF kernel per
    policy), an ``oracle`` section (float64 bit-equality), optional
    ``training`` section (end-to-end epoch wall-clock + Monte-Carlo
    accuracy per policy), the tolerance constants, and an
    ``equivalent`` verdict:

    * the float64 oracle is bit-equal across reruns (deltas exactly 0),
    * every reduced-precision policy agrees with the oracle to
      :data:`DTYPE_LOSS_RTOL` on the SO-LF loss and the first training
      epoch loss, and within :data:`DTYPE_ACCURACY_TOL_PP` percentage
      points on post-training Monte-Carlo accuracy.
    """
    if policies is None:
        policies = PRECISION_POLICIES
    policies = tuple(resolve_policy(name).name for name in policies)
    if "float64" not in policies:
        raise ValueError("the float64 oracle policy must be benchmarked")

    solf, _ = _bench_solf(
        seq_len, batch, draws, num_filters, repeats, seed, policies
    )
    oracle = _oracle_check(seq_len, batch, draws, num_filters, seed)

    base_loss = solf["by_policy"]["float64"]["loss"]
    checks: List[bool] = [oracle["bit_equal"]]
    for name in policies:
        if name == "float64":
            continue
        rel = abs(solf["by_policy"][name]["loss"] - base_loss) / max(
            abs(base_loss), 1e-12
        )
        solf[f"rel_loss_delta_{name}"] = rel
        checks.append(rel <= DTYPE_LOSS_RTOL)

    record: Dict = {
        "policies": list(policies),
        "solf": solf,
        "oracle": oracle,
        "loss_rtol": DTYPE_LOSS_RTOL,
        "accuracy_tol_pp": DTYPE_ACCURACY_TOL_PP,
    }
    if include_training:
        training = _bench_training(
            train_epochs, train_samples, train_seq_len, n_classes, seed, policies
        )
        record["training"] = training
        for name in policies:
            if name == "float64":
                continue
            checks.append(
                training[f"first_epoch_rel_loss_delta_{name}"] <= DTYPE_LOSS_RTOL
            )
            checks.append(
                training[f"accuracy_delta_pp_{name}"] <= DTYPE_ACCURACY_TOL_PP
            )
    record["equivalent"] = bool(all(checks))
    telemetry.emit(
        "gauges", source="dtype-bench", gauges=telemetry.gauges.snapshot()
    )
    return record


def format_dtype_benchmark(record: Dict) -> str:
    """ASCII summary of a :func:`run_dtype_benchmark` record."""
    from ..utils.tables import render_table

    solf = record["solf"]
    rows = []
    for name in record["policies"]:
        entry = solf["by_policy"][name]
        rows.append(
            [
                name,
                entry["compute_dtype"],
                f"{entry['forward_s'] * 1e3:.2f} ms",
                f"{entry['backward_s'] * 1e3:.2f} ms",
                f"{entry['step_s'] * 1e3:.2f} ms",
            ]
        )
    lines = [
        f"SO-LF bank (fused): T={solf['seq_len']}, batch={solf['batch']}, "
        f"draws={solf['draws']}, n={solf['num_filters']}",
        render_table(["policy", "compute", "forward", "backward", "fwd+bwd"], rows),
    ]
    for name in record["policies"]:
        if name == "float64":
            continue
        speed = solf.get(f"speedup_{name}")
        rel = solf.get(f"rel_loss_delta_{name}")
        if speed is not None:
            lines.append(
                f"{name}: {speed:.2f}x over float64, rel |Δloss| = {rel:.2e} "
                f"(tol {record['loss_rtol']:.0e})"
            )
    oracle = record["oracle"]
    verdict = "bit-equal" if oracle["bit_equal"] else "DIVERGED"
    lines.append(
        f"float64 oracle rerun: |Δloss| = {oracle['loss_delta']:.1e}, "
        f"max |Δgrad| = {oracle['max_abs_grad_delta']:.1e} — {verdict}"
    )
    training = record.get("training")
    if training:
        rows = []
        for name in record["policies"]:
            entry = training["by_policy"][name]
            rows.append(
                [
                    name,
                    f"{entry['epoch_s'] * 1e3:.1f} ms",
                    f"{entry['final_train_loss']:.4f}",
                    f"{entry['mc_accuracy']:.3f}",
                ]
            )
        lines.append(
            f"Trainer.fit (VA+AT, CI config, {training['epochs']} epochs, "
            f"{training['n_samples']} samples):"
        )
        lines.append(
            render_table(["policy", "epoch", "final loss", "MC accuracy"], rows)
        )
        for name in record["policies"]:
            if name == "float64":
                continue
            lines.append(
                f"{name}: epoch speedup {training[f'epoch_speedup_{name}']:.2f}x, "
                f"accuracy Δ {training[f'accuracy_delta_pp_{name}']:.2f} pp "
                f"(tol {record['accuracy_tol_pp']} pp)"
            )
    lines.append(
        "equivalence: OK" if record["equivalent"] else "equivalence: FAILED"
    )
    return "\n".join(lines)
