"""Variation-aware training (Sec. III-A, Eqs. 12-14).

The trainable component values are treated as random variables
``v = v₀ ⊙ ε``; the objective is the Monte-Carlo estimate of the
expected loss over ε, μ and V₀ (Eq. 13), minimised with AdamW under the
paper's protocol: full-batch training, initial LR 0.1, halved after
every ``patience`` epochs without validation improvement, terminated
once the LR falls below 1e-5.

The same :class:`Trainer` trains the non-variation-aware baseline
(ideal sampler, one MC sample) and the hardware-agnostic Elman
reference (no sampler at all) — one code path for every row of Table I.

Monte-Carlo backends
--------------------
The MC expectation over draws is evaluated by one of two backends:

* ``"batched"`` (default) — all draws run through a single vectorized
  forward with a leading ``(draws, batch, ...)`` axis (the variation
  sampler's :meth:`~repro.circuits.VariationSampler.batched` context);
* ``"sequential"`` — the original per-draw Python loop, retained as the
  reference oracle for equivalence testing.

Both backends derive one child random stream per draw from the same
parent generator, so they sample bit-identical ε/μ/V₀ values and their
losses agree to floating-point accumulation error (≪1e-8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..augment import AugmentationConfig, augment_dataset
from ..autograd import Tensor, no_grad
from ..circuits import SCAN_BACKENDS, UniformVariation, VariationSampler, ideal_sampler
from ..nn import cross_entropy
from ..nn.module import Module
from ..optim import AdamW, ReduceLROnPlateau
from ..utils.timing import Stopwatch, mc_counters

__all__ = [
    "TrainingConfig",
    "TrainingHistory",
    "Trainer",
    "MC_BACKENDS",
    "SCAN_BACKENDS",
]

#: Valid Monte-Carlo objective backends.
MC_BACKENDS = ("batched", "sequential")


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one training run.

    The defaults are the paper's protocol; :meth:`ci` returns a reduced
    same-code-path configuration for fast tests and benchmarks.
    """

    lr: float = 0.1
    lr_factor: float = 0.5
    lr_patience: int = 100
    min_lr: float = 1e-5
    max_epochs: int = 3000
    mc_samples: int = 5
    weight_decay: float = 0.01
    variation_delta: float = 0.10
    logit_loss: str = "cross_entropy"
    #: Monte-Carlo objective backend: "batched" evaluates all draws in
    #: one vectorized forward; "sequential" is the per-draw reference
    #: oracle (identical draws, kept for equivalence testing).
    mc_backend: str = "batched"
    #: Filter-recurrence backend: "fused" runs each RC scan as a single
    #: custom autograd node with an analytic adjoint backward;
    #: "unfused" is the node-per-step reference oracle.
    scan_backend: str = "fused"

    def __post_init__(self) -> None:
        if self.lr <= 0 or self.min_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.max_epochs <= 0:
            raise ValueError("max_epochs must be positive")
        if self.mc_samples < 1:
            raise ValueError("mc_samples must be >= 1")
        if not 0 <= self.variation_delta < 1:
            raise ValueError("variation_delta must be in [0, 1)")
        if self.mc_backend not in MC_BACKENDS:
            raise ValueError(f"mc_backend must be one of {MC_BACKENDS}")
        if self.scan_backend not in SCAN_BACKENDS:
            raise ValueError(f"scan_backend must be one of {SCAN_BACKENDS}")

    @staticmethod
    def paper() -> "TrainingConfig":
        """The exact protocol of Sec. IV-A3."""
        return TrainingConfig()

    @staticmethod
    def ci() -> "TrainingConfig":
        """Reduced-size protocol for CI/benchmarks (same code path).

        The paper's lr = 0.1 relies on plateau-halving over thousands
        of epochs to recover from early instability; at a 150-epoch
        horizon a 0.03 initial LR reaches the same optima directly.
        """
        return TrainingConfig(
            lr=0.03,
            lr_patience=15,
            min_lr=1e-4,
            max_epochs=150,
            mc_samples=2,
        )


@dataclass
class TrainingHistory:
    """Per-epoch records of one training run."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    learning_rate: List[float] = field(default_factory=list)
    best_val_loss: float = math.inf
    best_epoch: int = -1
    epochs_run: int = 0


def mc_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy over a ``(draws, batch, classes)`` logit stack.

    Flattens draws and batch into one axis and tiles the labels, which
    equals the draw-average of per-draw mean cross-entropies (every
    draw covers the same batch) — the vectorized form of Eq. 13.
    """
    if logits.ndim != 3:
        raise ValueError(f"expected (draws, batch, classes) logits, got {logits.shape}")
    draws, batch, classes = logits.shape
    flat = logits.reshape(draws * batch, classes)
    tiled = np.tile(np.asarray(labels, dtype=np.int64), draws)
    return cross_entropy(flat, tiled)


__all__.append("mc_cross_entropy")


class Trainer:
    """Trains one model under one variation policy.

    Parameters
    ----------
    model:
        Any module mapping ``(batch, time)`` series to logits.
    config:
        Protocol hyper-parameters.
    variation_aware:
        When True (and the model is a printed model exposing
        ``set_sampler``), training samples component variations per
        Monte-Carlo draw; otherwise the ideal sampler is installed and a
        single draw is used.
    augmentation:
        Optional augmented-training (AT) config: the training and
        validation sets are extended with augmented copies, per the
        paper's policy of combining augmented with original data.
    seed:
        Controls the variation sampler and augmentation draws.
    """

    def __init__(
        self,
        model: Module,
        config: Optional[TrainingConfig] = None,
        variation_aware: bool = False,
        augmentation: Optional[AugmentationConfig] = None,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.config = config if config is not None else TrainingConfig.paper()
        self.variation_aware = variation_aware
        self.augmentation = augmentation
        self.seed = seed

        self._is_printed = hasattr(model, "set_sampler")
        if hasattr(model, "set_scan_backend"):
            model.set_scan_backend(self.config.scan_backend)
        if self._is_printed:
            if variation_aware:
                sampler = VariationSampler(
                    model=UniformVariation(self.config.variation_delta),
                    rng=np.random.default_rng(seed + 104729),
                )
            else:
                sampler = ideal_sampler()
            model.set_sampler(sampler)
        elif variation_aware:
            raise ValueError("variation-aware training requires a printed model")

    # -- loss ------------------------------------------------------------

    def _mc_samples(self) -> int:
        if self.variation_aware:
            return self.config.mc_samples
        return 1

    def _loss(self, x: np.ndarray, y: np.ndarray) -> Tensor:
        """Monte-Carlo objective (Eq. 13): average loss over fresh draws.

        Dispatches to the vectorized batched backend (default) or the
        sequential reference oracle, both consuming identical per-draw
        random streams; records wall-clock and draw counts in
        :data:`repro.utils.timing.mc_counters`.
        """
        draws = self._mc_samples()
        backend = self.config.mc_backend
        if not (self.variation_aware and self._is_printed):
            # Deterministic objective (ideal sampler / Elman): a single
            # forward is exact, no MC machinery needed.
            with Stopwatch() as sw:
                loss = cross_entropy(self.model(x), y)
            mc_counters.record_forward(sw.elapsed, 1, backend="deterministic")
            return loss
        sampler = self.model.sampler
        if backend == "batched":
            with Stopwatch() as sw:
                with sampler.batched(draws):
                    logits = self.model(x)  # (draws, batch, classes)
                loss = mc_cross_entropy(logits, y)
            mc_counters.record_forward(sw.elapsed, draws, backend="batched")
            return loss
        # Sequential oracle: one forward per draw, each consuming its
        # own child stream (the same streams the batched path uses).
        streams = sampler.spawn_streams(draws)
        parent = sampler.rng
        total: Optional[Tensor] = None
        with Stopwatch() as sw:
            try:
                for stream in streams:
                    sampler.rng = stream
                    loss = cross_entropy(self.model(x), y)
                    total = loss if total is None else total + loss
            finally:
                sampler.rng = parent
        mc_counters.record_forward(sw.elapsed, draws, backend="sequential")
        assert total is not None
        return total / float(draws)

    def _eval_loss(self, x: np.ndarray, y: np.ndarray) -> float:
        with no_grad():
            return float(self._loss(x, y).item())

    # -- fitting ------------------------------------------------------------

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: np.ndarray,
        y_val: np.ndarray,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Run the full protocol; the model ends loaded with its best state."""
        if self.augmentation is not None:
            x_train, y_train = augment_dataset(
                x_train, y_train, self.augmentation, seed=self.seed + 7, copies=1
            )
            x_val, y_val = augment_dataset(
                x_val, y_val, self.augmentation, seed=self.seed + 13, copies=1
            )

        optimizer = AdamW(
            self.model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )
        scheduler = ReduceLROnPlateau(
            optimizer,
            factor=self.config.lr_factor,
            patience=self.config.lr_patience,
            min_lr=self.config.min_lr,
        )
        history = TrainingHistory()
        best_state: Optional[Dict[str, np.ndarray]] = None

        for epoch in range(self.config.max_epochs):
            optimizer.zero_grad()
            loss = self._loss(x_train, y_train)
            with Stopwatch() as sw:
                loss.backward()
            mc_counters.record_backward(sw.elapsed)
            optimizer.step()

            val_loss = self._eval_loss(x_val, y_val)
            history.train_loss.append(float(loss.item()))
            history.val_loss.append(val_loss)
            history.learning_rate.append(optimizer.lr)
            history.epochs_run = epoch + 1

            if val_loss < history.best_val_loss:
                history.best_val_loss = val_loss
                history.best_epoch = epoch
                best_state = self.model.state_dict()

            scheduler.step(val_loss)
            if scheduler.should_stop():
                break
            if verbose and epoch % 50 == 0:
                print(
                    f"epoch {epoch:4d}  train {history.train_loss[-1]:.4f}  "
                    f"val {val_loss:.4f}  lr {optimizer.lr:.2e}"
                )

        if best_state is not None:
            self.model.load_state_dict(best_state)
        # Leave the model deterministic: evaluation utilities install
        # their own variation samplers explicitly.
        if self._is_printed:
            self.model.set_sampler(ideal_sampler())
        return history
