"""Variation-aware training (Sec. III-A, Eqs. 12-14).

The trainable component values are treated as random variables
``v = v₀ ⊙ ε``; the objective is the Monte-Carlo estimate of the
expected loss over ε, μ and V₀ (Eq. 13), minimised with AdamW under the
paper's protocol: full-batch training, initial LR 0.1, halved after
every ``patience`` epochs without validation improvement, terminated
once the LR falls below 1e-5.

The same :class:`Trainer` trains the non-variation-aware baseline
(ideal sampler, one MC sample) and the hardware-agnostic Elman
reference (no sampler at all) — one code path for every row of Table I.

Monte-Carlo backends
--------------------
The MC expectation over draws is evaluated by one of two backends:

* ``"batched"`` (default) — all draws run through a single vectorized
  forward with a leading ``(draws, batch, ...)`` axis (the variation
  sampler's :meth:`~repro.circuits.VariationSampler.batched` context);
* ``"sequential"`` — the original per-draw Python loop, retained as the
  reference oracle for equivalence testing.

Both backends derive one child random stream per draw from the same
parent generator, so they sample bit-identical ε/μ/V₀ values and their
losses agree to floating-point accumulation error (≪1e-8).

Telemetry
---------
When a :class:`repro.telemetry.Run` is active, :meth:`Trainer.fit`
keys the run manifest with the training protocol and emits one
``epoch`` event per epoch (train/val loss, MC loss mean/std across
draws, learning rate, epoch wall-clock) plus ``fit_start`` /
``fit_end`` markers; the objective/backward/validation phases are
timed as telemetry spans.  With no active run every hook is a single
``None`` check — the fast path emits nothing and adds no measurable
overhead (regression-tested).

Checkpoint/resume
-----------------
``fit(..., checkpoint_dir=...)`` writes an ``.npz`` checkpoint (model
parameters, best-so-far state, AdamW moments, plateau-scheduler
counters, the variation sampler's RNG bit-generator state, and the
history) after each epoch; ``resume=True`` restores it and continues
the epoch loop **bit-equally** — the resumed run's remaining epochs
reproduce the uninterrupted run's losses exactly, because every source
of state (including the per-draw random streams) is serialised.  When
a telemetry run is active and no ``checkpoint_dir`` is given,
checkpoints land in ``<run dir>/checkpoints/`` keyed by the manifest.
"""

from __future__ import annotations

import math
import pathlib
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .. import telemetry
from ..augment import AugmentationConfig, augment_dataset
from ..autograd import Tensor, is_grad_enabled, no_grad
from ..autograd.precision import (
    PRECISION_POLICIES,
    compute_dtype,
    get_precision,
    resolve_policy,
    use_precision,
)
from ..autograd.tape import (
    CompiledTape,
    TapeCache,
    TapeCapture,
    TapeError,
    active_capture,
    tape_counters,
    tracing,
)
from ..circuits import SCAN_BACKENDS, UniformVariation, VariationSampler, ideal_sampler
from ..nn import cross_entropy
from ..nn.module import Module
from ..optim import AdamW, ReduceLROnPlateau
from ..utils.serialization import load_checkpoint, save_checkpoint
from ..utils.timing import Stopwatch, mc_counters

__all__ = [
    "TrainingConfig",
    "TrainingHistory",
    "Trainer",
    "MC_BACKENDS",
    "SCAN_BACKENDS",
    "GRAPH_BACKENDS",
    "CHECKPOINT_FILENAME",
]

#: Valid Monte-Carlo objective backends.
MC_BACKENDS = ("batched", "sequential")

#: Valid autograd graph backends: "interpreted" rebuilds the Python
#: graph every step (the bit-equal oracle); "tape" captures the op
#: stream once per objective signature and replays it as a flat
#: compiled loop (see :mod:`repro.autograd.tape`).
GRAPH_BACKENDS = ("interpreted", "tape")

#: File name of the (single, overwritten) trainer checkpoint.
CHECKPOINT_FILENAME = "checkpoint.npz"

#: Version tag of the checkpoint layout.
CHECKPOINT_VERSION = 1

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one training run.

    The defaults are the paper's protocol; :meth:`ci` returns a reduced
    same-code-path configuration for fast tests and benchmarks.
    """

    lr: float = 0.1
    lr_factor: float = 0.5
    lr_patience: int = 100
    min_lr: float = 1e-5
    max_epochs: int = 3000
    mc_samples: int = 5
    weight_decay: float = 0.01
    variation_delta: float = 0.10
    logit_loss: str = "cross_entropy"
    #: Monte-Carlo objective backend: "batched" evaluates all draws in
    #: one vectorized forward; "sequential" is the per-draw reference
    #: oracle (identical draws, kept for equivalence testing).
    mc_backend: str = "batched"
    #: Filter-recurrence backend: "fused" runs each RC scan as a single
    #: custom autograd node with an analytic adjoint backward;
    #: "unfused" is the node-per-step reference oracle.
    scan_backend: str = "fused"
    #: Precision policy: "float64" is the bit-equal reference oracle;
    #: "float32" runs compute, weights and optimizer moments in single
    #: precision; "mixed" runs float32 compute against float64 master
    #: weights/moments inside AdamW (AMP-style).
    precision: str = "float64"
    #: Autograd graph backend: "interpreted" (default) rebuilds the
    #: closure graph every step and is the bit-equal oracle; "tape"
    #: traces the objective once per signature and replays it over
    #: preallocated buffers, falling back to interpreted whenever a
    #: trace cannot be compiled or self-checked bit-exactly.
    graph_backend: str = "interpreted"

    def __post_init__(self) -> None:
        """Validate hyper-parameter ranges and backend names."""
        if self.lr <= 0 or self.min_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.max_epochs <= 0:
            raise ValueError("max_epochs must be positive")
        if self.mc_samples < 1:
            raise ValueError("mc_samples must be >= 1")
        if not 0 <= self.variation_delta < 1:
            raise ValueError("variation_delta must be in [0, 1)")
        if self.mc_backend not in MC_BACKENDS:
            raise ValueError(f"mc_backend must be one of {MC_BACKENDS}")
        if self.scan_backend not in SCAN_BACKENDS:
            raise ValueError(f"scan_backend must be one of {SCAN_BACKENDS}")
        if self.precision not in PRECISION_POLICIES:
            raise ValueError(f"precision must be one of {PRECISION_POLICIES}")
        if self.graph_backend not in GRAPH_BACKENDS:
            raise ValueError(f"graph_backend must be one of {GRAPH_BACKENDS}")

    @staticmethod
    def paper() -> "TrainingConfig":
        """The exact protocol of Sec. IV-A3."""
        return TrainingConfig()

    @staticmethod
    def ci() -> "TrainingConfig":
        """Reduced-size protocol for CI/benchmarks (same code path).

        The paper's lr = 0.1 relies on plateau-halving over thousands
        of epochs to recover from early instability; at a 150-epoch
        horizon a 0.03 initial LR reaches the same optima directly.
        """
        return TrainingConfig(
            lr=0.03,
            lr_patience=15,
            min_lr=1e-4,
            max_epochs=150,
            mc_samples=2,
        )


@dataclass
class TrainingHistory:
    """Per-epoch records of one training run."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    learning_rate: List[float] = field(default_factory=list)
    best_val_loss: float = math.inf
    best_epoch: int = -1
    epochs_run: int = 0

    @classmethod
    def from_epoch_events(cls, events: Sequence[Dict]) -> "TrainingHistory":
        """Rebuild a history from telemetry ``epoch`` events.

        The trainer emits every per-epoch quantity into the event
        stream verbatim (JSON floats round-trip exactly), so the
        reconstruction equals the in-memory history of the run that
        produced the events.
        """
        events = sorted(events, key=lambda e: e["epoch"])
        history = cls()
        for event in events:
            history.train_loss.append(float(event["train_loss"]))
            history.val_loss.append(float(event["val_loss"]))
            history.learning_rate.append(float(event["lr"]))
        if events:
            last = events[-1]
            history.best_val_loss = float(last["best_val_loss"])
            history.best_epoch = int(last["best_epoch"])
            history.epochs_run = int(last["epoch"]) + 1
        return history


def mc_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy over a ``(draws, batch, classes)`` logit stack.

    Flattens draws and batch into one axis and tiles the labels, which
    equals the draw-average of per-draw mean cross-entropies (every
    draw covers the same batch) — the vectorized form of Eq. 13.
    """
    if logits.ndim != 3:
        raise ValueError(f"expected (draws, batch, classes) logits, got {logits.shape}")
    draws, batch, classes = logits.shape
    flat = logits.reshape(draws * batch, classes)
    tiled = np.tile(np.asarray(labels, dtype=np.int64), draws)
    return cross_entropy(flat, tiled)


__all__.append("mc_cross_entropy")


def _per_draw_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-draw mean cross-entropy of a ``(draws, batch, classes)`` stack.

    Pure-numpy (no autograd graph): used only to report the Monte-Carlo
    loss distribution across draws in telemetry epoch events.
    """
    labels = np.asarray(labels, dtype=np.int64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    logp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    picked = logp[:, np.arange(labels.shape[0]), labels]  # (draws, batch)
    return -picked.mean(axis=1)


def _rng_state(rng: np.random.Generator) -> Dict:
    """JSON-serialisable snapshot of a numpy Generator's exact state.

    ``bit_generator.state`` alone is *not* enough for bit-equal resume:
    the variation sampler derives per-draw child streams via
    ``Generator.spawn``, which advances the underlying ``SeedSequence``
    spawn counter — a piece of state the bit-generator dict omits.  The
    snapshot therefore records both the raw bit-generator state and the
    seed sequence (entropy, spawn key, spawn counter).
    """
    bitgen = rng.bit_generator
    seed_seq = getattr(bitgen, "seed_seq", None) or bitgen._seed_seq
    return {
        "state": bitgen.state,
        "seed_seq": {
            "entropy": seed_seq.entropy,
            "spawn_key": list(seed_seq.spawn_key),
            "pool_size": seed_seq.pool_size,
            "n_children_spawned": seed_seq.n_children_spawned,
        },
    }


def _restore_rng(state: Dict) -> np.random.Generator:
    """Rebuild a numpy Generator from a :func:`_rng_state` snapshot.

    The returned generator reproduces both the raw random stream *and*
    future ``spawn`` calls bit-for-bit.
    """
    seq = state["seed_seq"]
    seed_seq = np.random.SeedSequence(
        entropy=seq["entropy"],
        spawn_key=tuple(seq["spawn_key"]),
        pool_size=int(seq["pool_size"]),
        n_children_spawned=int(seq["n_children_spawned"]),
    )
    bitgen_cls = getattr(np.random, state["state"]["bit_generator"])
    bitgen = bitgen_cls(seed_seq)
    bitgen.state = state["state"]
    return np.random.Generator(bitgen)


class Trainer:
    """Trains one model under one variation policy.

    Parameters
    ----------
    model:
        Any module mapping ``(batch, time)`` series to logits.
    config:
        Protocol hyper-parameters.
    variation_aware:
        When True (and the model is a printed model exposing
        ``set_sampler``), training samples component variations per
        Monte-Carlo draw; otherwise the ideal sampler is installed and a
        single draw is used.
    augmentation:
        Optional augmented-training (AT) config: the training and
        validation sets are extended with augmented copies, per the
        paper's policy of combining augmented with original data.
    seed:
        Controls the variation sampler and augmentation draws.
    """

    def __init__(
        self,
        model: Module,
        config: Optional[TrainingConfig] = None,
        variation_aware: bool = False,
        augmentation: Optional[AugmentationConfig] = None,
        seed: int = 0,
    ) -> None:
        """Install the variation sampler and scan backend on ``model``."""
        self.model = model
        self.config = config if config is not None else TrainingConfig.paper()
        self.variation_aware = variation_aware
        self.augmentation = augmentation
        self.seed = seed
        #: Per-draw losses of the most recent MC objective evaluation
        #: (populated only while a telemetry run is active).
        self._last_draw_losses: Optional[np.ndarray] = None
        #: Compiled tapes keyed by objective signature (graph_backend
        #: "tape" only; empty and unused under "interpreted").
        self._tape_cache = TapeCache()
        #: Parameter list walked once: the signature only needs each
        #: parameter's (mutable) ``requires_grad`` flag per evaluation.
        self._sig_params = [p for _, p in model.named_parameters()]
        #: Label-hash memo for :meth:`_tape_signature` (id -> (ref, hash)).
        self._y_hash_memo: Dict[int, Tuple[np.ndarray, int]] = {}

        self._is_printed = hasattr(model, "set_sampler")
        if hasattr(model, "set_scan_backend"):
            model.set_scan_backend(self.config.scan_backend)
        if self._is_printed:
            if variation_aware:
                sampler = VariationSampler(
                    model=UniformVariation(self.config.variation_delta),
                    rng=np.random.default_rng(seed + 104729),
                )
            else:
                sampler = ideal_sampler()
            model.set_sampler(sampler)
        elif variation_aware:
            raise ValueError("variation-aware training requires a printed model")

    # -- loss ------------------------------------------------------------

    def _mc_samples(self) -> int:
        """Number of Monte-Carlo draws the objective uses (1 if not VA)."""
        if self.variation_aware:
            return self.config.mc_samples
        return 1

    def _loss(self, x: np.ndarray, y: np.ndarray) -> Tensor:
        """Monte-Carlo objective (Eq. 13): average loss over fresh draws.

        Dispatches on ``config.graph_backend``: "interpreted" rebuilds
        the autograd graph (the bit-equal oracle), "tape" replays a
        compiled trace when one matches the objective signature and
        falls back to interpreted otherwise.
        """
        if self.config.graph_backend == "tape":
            return self._tape_loss(x, y)
        return self._interpreted_loss(x, y)

    def _interpreted_loss(self, x: np.ndarray, y: np.ndarray) -> Tensor:
        """Interpreted-graph Monte-Carlo objective (the reference path).

        Dispatches to the vectorized batched backend (default) or the
        sequential reference oracle, both consuming identical per-draw
        random streams; records wall-clock and draw counts in
        :data:`repro.utils.timing.mc_counters` and, when a telemetry
        run is active, times the forward as a ``forward`` span and
        captures the per-draw loss distribution.
        """
        draws = self._mc_samples()
        backend = self.config.mc_backend
        dtype_key = str(get_precision().compute)
        run = telemetry.active_run()
        self._last_draw_losses = None
        if not (self.variation_aware and self._is_printed):
            # Deterministic objective (ideal sampler / Elman): a single
            # forward is exact, no MC machinery needed.
            with Stopwatch() as sw, telemetry.span("forward"):
                loss = cross_entropy(self.model(x), y)
            mc_counters.record_forward(sw.elapsed, 1, backend="deterministic")
            mc_counters.record_precision(dtype_key, sw.elapsed, 1)
            return loss
        sampler = self.model.sampler
        if backend == "batched":
            with Stopwatch() as sw, telemetry.span("forward"):
                with sampler.batched(draws):
                    logits = self.model(x)  # (draws, batch, classes)
                cap = active_capture()
                if cap is not None:
                    # Tagged so tape replays can read back the logits
                    # for the per-draw telemetry distribution.
                    cap.tag_value("logits", logits)
                loss = mc_cross_entropy(logits, y)
            mc_counters.record_forward(sw.elapsed, draws, backend="batched")
            mc_counters.record_precision(dtype_key, sw.elapsed, draws)
            if run is not None:
                self._last_draw_losses = _per_draw_cross_entropy(logits.data, y)
            return loss
        # Sequential oracle: one forward per draw, each consuming its
        # own child stream (the same streams the batched path uses).
        streams = sampler.spawn_streams(draws)
        parent = sampler.rng
        total: Optional[Tensor] = None
        per_draw: List[float] = []
        with Stopwatch() as sw, telemetry.span("forward"):
            try:
                for stream in streams:
                    sampler.rng = stream
                    loss = cross_entropy(self.model(x), y)
                    if run is not None:
                        with no_grad():
                            per_draw.append(float(loss.item()))
                    total = loss if total is None else total + loss
            finally:
                sampler.rng = parent
        mc_counters.record_forward(sw.elapsed, draws, backend="sequential")
        mc_counters.record_precision(dtype_key, sw.elapsed, draws)
        if run is not None:
            self._last_draw_losses = np.asarray(per_draw)
        assert total is not None
        return total / float(draws)

    # -- tape backend -----------------------------------------------------

    def _tape_signature(
        self, xa: np.ndarray, y: np.ndarray, variant: str, draws: int
    ) -> tuple:
        """Cache key covering everything a compiled tape bakes in.

        Inputs are rebound on every replay, so only their shape/dtype
        matter; labels are baked into the traced ``getitem`` indices,
        so their *content* is hashed.  Precision, scan backend, grad
        mode and the parameter ``requires_grad`` mask all change the
        recorded op stream, so any flip forces a clean retrace.

        The label hash is memoised per array object (the epoch loop
        hands the same ``y_train``/``y_val`` arrays to every step);
        holding a reference in the memo pins the ``id`` so it can never
        be recycled by a different array.
        """
        yb = np.asarray(y)
        memo = self._y_hash_memo.get(id(yb))
        if memo is not None and memo[0] is yb:
            y_hash = memo[1]
        else:
            y_hash = hash((yb.tobytes(), yb.shape, str(yb.dtype)))
            self._y_hash_memo[id(yb)] = (yb, y_hash)
        return (
            variant,
            draws,
            xa.shape,
            str(xa.dtype),
            y_hash,
            self.config.precision,
            self.config.scan_backend,
            is_grad_enabled(),
            tuple(p.requires_grad for p in self._sig_params),
        )

    def _tape_loss(self, x: np.ndarray, y: np.ndarray) -> Tensor:
        """Objective under ``graph_backend="tape"``.

        First evaluation of a signature runs the interpreted objective
        under a :class:`~repro.autograd.tape.TapeCapture` and compiles
        it; later evaluations replay the compiled tape over preallocated
        buffers.  Any compile or replay failure permanently routes the
        signature back to the interpreted oracle.
        """
        draws = self._mc_samples()
        variant = (
            "deterministic"
            if not (self.variation_aware and self._is_printed)
            else self.config.mc_backend
        )
        xa = np.asarray(x, dtype=compute_dtype())
        key = self._tape_signature(xa, y, variant, draws)
        cached = self._tape_cache.lookup(key)
        if cached == "failed":
            tape_counters.record_cache("fallback")
            return self._interpreted_loss(xa, y)
        if cached is None:
            tape_counters.record_cache("miss")
            return self._trace_tape(key, xa, y, variant, draws)
        tape_counters.record_cache("hit")
        try:
            return self._replay_tape(cached, xa, y, variant, draws)
        except TapeError:
            self._tape_cache.mark_failed(key)
            tape_counters.record_cache("fallback")
            return self._interpreted_loss(xa, y)

    def _trace_tape(
        self, key: tuple, xa: np.ndarray, y: np.ndarray, variant: str, draws: int
    ) -> Tensor:
        """Evaluate interpreted under a capture, compile, and cache.

        Returns the interpreted loss tensor (its closure graph intact,
        so this step's ``backward()`` runs interpreted); the compiled
        tape serves every later evaluation of the same signature.
        """
        if variant == "sequential":
            return self._trace_tape_sequential(key, xa, y, draws)
        capture = TapeCapture()
        capture.tag_input("x", xa)
        with tracing(capture):
            loss = self._interpreted_loss(xa, y)
        try:
            compiled = CompiledTape(capture, loss)
        except TapeError:
            self._tape_cache.mark_failed(key)
            tape_counters.record_cache("fallback")
        else:
            self._tape_cache.store(key, compiled)
        return loss

    def _trace_tape_sequential(
        self, key: tuple, xa: np.ndarray, y: np.ndarray, draws: int
    ) -> Tensor:
        """Sequential-backend trace: record draw 0, run the rest plain.

        Every draw consumes its own child stream exactly as the
        interpreted sequential oracle does; only the first draw's op
        stream is captured (all draws share one op sequence — just
        different random values, which replays re-draw per stream).
        """
        sampler = self.model.sampler
        dtype_key = str(get_precision().compute)
        run = telemetry.active_run()
        streams = sampler.spawn_streams(draws)
        parent = sampler.rng
        capture = TapeCapture()
        capture.tag_input("x", xa)
        total: Optional[Tensor] = None
        first: Optional[Tensor] = None
        per_draw: List[float] = []
        with Stopwatch() as sw, telemetry.span("forward"):
            try:
                for i, stream in enumerate(streams):
                    sampler.rng = stream
                    if i == 0:
                        with tracing(capture):
                            loss = cross_entropy(self.model(xa), y)
                        first = loss
                    else:
                        loss = cross_entropy(self.model(xa), y)
                    if run is not None:
                        with no_grad():
                            per_draw.append(float(loss.item()))
                    total = loss if total is None else total + loss
            finally:
                sampler.rng = parent
        mc_counters.record_forward(sw.elapsed, draws, backend="sequential")
        mc_counters.record_precision(dtype_key, sw.elapsed, draws)
        if run is not None:
            self._last_draw_losses = np.asarray(per_draw)
        assert total is not None and first is not None
        try:
            compiled = CompiledTape(capture, first)
        except TapeError:
            self._tape_cache.mark_failed(key)
            tape_counters.record_cache("fallback")
        else:
            self._tape_cache.store(key, compiled)
        return total / float(draws)

    def _pseudo_loss(self, value: np.ndarray, backward_fn) -> Tensor:
        """Wrap a replayed loss value as a backward-capable tensor.

        The value is copied out of the tape's arena (the output slot is
        reused by the next replay); ``backward_fn`` receives the
        incoming gradient and drives the compiled backward.
        """
        out = Tensor(np.asarray(value).copy())
        if is_grad_enabled() and backward_fn is not None:
            out.requires_grad = True
            out._backward_fn = backward_fn
            out._op = "tape_replay"
        return out

    def _replay_tape(
        self,
        compiled: CompiledTape,
        xa: np.ndarray,
        y: np.ndarray,
        variant: str,
        draws: int,
    ) -> Tensor:
        """Replay a compiled tape, mirroring the interpreted telemetry.

        Deterministic and batched variants replay once (batched inside
        a fresh ``sampler.batched`` context, so the recorded providers
        consume the same child streams the interpreted path would);
        the sequential variant replays per draw and — because each
        draw's buffers are overwritten by the next — runs its backward
        eagerly into an accumulator, which the returned tensor's
        ``backward()`` merely flushes (scaled by the draw average).
        """
        dtype_key = str(get_precision().compute)
        run = telemetry.active_run()
        self._last_draw_losses = None
        if variant == "deterministic":
            with Stopwatch() as sw, telemetry.span("forward"):
                value = compiled.replay_forward({"x": xa})
            mc_counters.record_forward(sw.elapsed, 1, backend="deterministic")
            mc_counters.record_precision(dtype_key, sw.elapsed, 1)
            return self._pseudo_loss(value, compiled.replay_backward)
        sampler = self.model.sampler
        if variant == "batched":
            with Stopwatch() as sw, telemetry.span("forward"):
                with sampler.batched(draws):
                    value = compiled.replay_forward({"x": xa})
            mc_counters.record_forward(sw.elapsed, draws, backend="batched")
            mc_counters.record_precision(dtype_key, sw.elapsed, draws)
            if run is not None:
                self._last_draw_losses = _per_draw_cross_entropy(
                    compiled.value("logits"), y
                )
            return self._pseudo_loss(value, compiled.replay_backward)
        # Sequential: one replay per child stream, eager backward.
        streams = sampler.spawn_streams(draws)
        parent = sampler.rng
        values: List[np.ndarray] = []
        acc: Dict[int, np.ndarray] = {}
        grad_wanted = is_grad_enabled() and bool(compiled.grad_leaves)
        divisor = np.asarray(float(draws), dtype=compute_dtype())
        # Seed each draw's backward with 1/draws — the bits the
        # interpreted truediv backward threads into every draw subgraph
        # — instead of seeding with ones and scaling the leaf sums:
        # scaling after the VJP chain rounds differently and would
        # break float64 bit-equality for non-power-of-two draw counts.
        seed = np.ones((), dtype=compute_dtype()) / divisor
        with Stopwatch() as sw, telemetry.span("forward"):
            try:
                for stream in streams:
                    sampler.rng = stream
                    v = compiled.replay_forward({"x": xa})
                    values.append(np.asarray(v).copy())
                    if grad_wanted:
                        compiled.replay_backward(seed=seed, into=acc)
            finally:
                sampler.rng = parent
        mc_counters.record_forward(sw.elapsed, draws, backend="sequential")
        mc_counters.record_precision(dtype_key, sw.elapsed, draws)
        if run is not None:
            self._last_draw_losses = np.asarray([float(v) for v in values])
        total = values[0]
        for v in values[1:]:
            total = total + v
        value = total / divisor
        backward = (
            (lambda g: compiled.apply_accumulated(acc, g))
            if grad_wanted
            else None
        )
        return self._pseudo_loss(value, backward)

    def _eval_loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Objective value without building a graph (validation loss)."""
        with no_grad():
            return float(self._loss(x, y).item())

    # -- checkpointing ----------------------------------------------------

    def _checkpoint_fingerprint(self) -> Dict:
        """Identity of this training setup, stored in every checkpoint.

        Resume refuses checkpoints whose fingerprint disagrees — a
        silently different protocol could never be bit-equal.
        ``max_epochs`` is deliberately excluded: extending the training
        horizon on resume is legitimate and does not perturb the epochs
        already run.
        """
        config = asdict(self.config)
        config.pop("max_epochs")
        return {
            "config": config,
            "seed": self.seed,
            "variation_aware": self.variation_aware,
            "model_class": type(self.model).__name__,
        }

    def save_checkpoint(
        self,
        path: PathLike,
        optimizer: AdamW,
        scheduler: ReduceLROnPlateau,
        history: TrainingHistory,
        best_state: Optional[Dict[str, np.ndarray]],
        stopped: bool,
    ) -> pathlib.Path:
        """Write the complete resumable training state to ``path``.

        Captures model parameters, the best-so-far snapshot, optimizer
        moments, scheduler counters, the sampler's RNG bit-generator
        state, and the per-epoch history — everything the epoch loop
        reads — so :meth:`fit` with ``resume=True`` continues bit-equal
        to the uninterrupted run.
        """
        arrays: Dict[str, np.ndarray] = {}
        for name, value in self.model.state_dict().items():
            arrays[f"model/{name}"] = value
        if best_state is not None:
            for name, value in best_state.items():
                arrays[f"best/{name}"] = value
        optim_state = optimizer.state_dict()
        for i, m in enumerate(optim_state["m"]):
            arrays[f"optim/m/{i}"] = m
        for i, v in enumerate(optim_state["v"]):
            arrays[f"optim/v/{i}"] = v
        masters = optim_state.get("master")
        if masters is not None:
            # Mixed policy: the float64 master weights are training
            # state — without them a resumed run could not be bit-equal.
            for i, w in enumerate(masters):
                arrays[f"optim/master/{i}"] = w
        policy = resolve_policy(self.config.precision)
        meta: Dict = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "fingerprint": self._checkpoint_fingerprint(),
            "stopped": bool(stopped),
            "has_best_state": best_state is not None,
            "precision": {
                "policy": self.config.precision,
                "compute": str(policy.compute),
                "master": str(policy.master),
            },
            "optimizer": {
                "lr": optim_state["lr"],
                "t": optim_state["t"],
                "has_master": masters is not None,
            },
            "scheduler": scheduler.state_dict(),
            "history": {
                "train_loss": history.train_loss,
                "val_loss": history.val_loss,
                "learning_rate": history.learning_rate,
                "best_val_loss": history.best_val_loss,
                "best_epoch": history.best_epoch,
                "epochs_run": history.epochs_run,
            },
        }
        if self.variation_aware and self._is_printed:
            meta["sampler_rng"] = _rng_state(self.model.sampler.rng)
        run = telemetry.active_run()
        if run is not None:
            meta["run_id"] = run.run_id
        return save_checkpoint(arrays, meta, path)

    def _restore_checkpoint(
        self,
        path: PathLike,
        optimizer: AdamW,
        scheduler: ReduceLROnPlateau,
    ) -> tuple:
        """Load ``path`` into the live training objects.

        Returns ``(history, best_state, stopped)``; raises
        ``ValueError`` when the checkpoint's fingerprint (config, seed,
        variation policy, model class) disagrees with this trainer.
        """
        arrays, meta = load_checkpoint(path)
        if meta.get("checkpoint_version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {meta.get('checkpoint_version')!r}"
            )
        fingerprint = self._checkpoint_fingerprint()
        if meta["fingerprint"] != fingerprint:
            raise ValueError(
                "checkpoint fingerprint mismatch — it was written by a "
                f"different training setup:\n  saved:   {meta['fingerprint']}\n"
                f"  current: {fingerprint}"
            )
        precision_meta = meta.get("precision")
        if precision_meta is not None:
            expected = resolve_policy(self.config.precision)
            if (
                precision_meta.get("policy") != self.config.precision
                or precision_meta.get("compute") != str(expected.compute)
            ):
                raise ValueError(
                    "checkpoint precision mismatch — saved "
                    f"{precision_meta!r}, this trainer uses policy "
                    f"{self.config.precision!r} (compute {expected.compute})"
                )
            recorded = np.dtype(precision_meta["compute"])
            bad = {
                name: str(value.dtype)
                for name, value in arrays.items()
                if name.startswith("model/") and value.dtype != recorded
            }
            if bad:
                raise ValueError(
                    "checkpoint arrays disagree with their recorded compute "
                    f"dtype {recorded}: {bad}"
                )
        model_state = {
            name[len("model/"):]: value
            for name, value in arrays.items()
            if name.startswith("model/")
        }
        self.model.load_state_dict(model_state)
        best_state: Optional[Dict[str, np.ndarray]] = None
        if meta["has_best_state"]:
            best_state = {
                name[len("best/"):]: value
                for name, value in arrays.items()
                if name.startswith("best/")
            }
        n_params = len(optimizer.params)
        optim_load = {
            "lr": meta["optimizer"]["lr"],
            "t": meta["optimizer"]["t"],
            "m": [arrays[f"optim/m/{i}"] for i in range(n_params)],
            "v": [arrays[f"optim/v/{i}"] for i in range(n_params)],
        }
        if meta["optimizer"].get("has_master"):
            optim_load["master"] = [
                arrays[f"optim/master/{i}"] for i in range(n_params)
            ]
        optimizer.load_state_dict(optim_load)
        scheduler.load_state_dict(meta["scheduler"])
        if "sampler_rng" in meta and self._is_printed:
            self.model.sampler.rng = _restore_rng(meta["sampler_rng"])
        h = meta["history"]
        history = TrainingHistory(
            train_loss=[float(v) for v in h["train_loss"]],
            val_loss=[float(v) for v in h["val_loss"]],
            learning_rate=[float(v) for v in h["learning_rate"]],
            best_val_loss=float(h["best_val_loss"]),
            best_epoch=int(h["best_epoch"]),
            epochs_run=int(h["epochs_run"]),
        )
        return history, best_state, bool(meta["stopped"])

    # -- fitting ------------------------------------------------------------

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: np.ndarray,
        y_val: np.ndarray,
        verbose: bool = False,
        checkpoint_dir: Optional[PathLike] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
    ) -> TrainingHistory:
        """Run the full protocol; the model ends loaded with its best state.

        The whole run executes inside the config's precision-policy
        scope: parameters are cast to the policy's compute dtype on
        entry (and the model is *left* in that dtype afterwards), input
        arrays are cast once up front, and under ``mixed`` the AdamW
        master weights live in float64.  Under the default ``float64``
        policy every cast is a no-op and the run is bit-equal to the
        pre-policy implementation.

        Parameters
        ----------
        x_train, y_train, x_val, y_val:
            Full-batch training and validation splits.
        verbose:
            Print a progress line every 50 epochs.
        checkpoint_dir:
            Directory receiving the (single, overwritten)
            ``checkpoint.npz``.  Defaults to ``<run dir>/checkpoints``
            when a telemetry run is active, else checkpointing is off.
        checkpoint_every:
            Save every N epochs (0 disables even under an active run).
        resume:
            Restore an existing checkpoint from ``checkpoint_dir`` (if
            any) and continue the epoch loop bit-equally from where it
            stopped.
        """
        with use_precision(self.config.precision) as policy:
            self.model.cast_(policy.compute)
            x_train = np.asarray(x_train, dtype=policy.compute)
            x_val = np.asarray(x_val, dtype=policy.compute)
            return self._fit_inner(
                x_train,
                y_train,
                x_val,
                y_val,
                verbose=verbose,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                resume=resume,
            )

    def _fit_inner(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: np.ndarray,
        y_val: np.ndarray,
        verbose: bool,
        checkpoint_dir: Optional[PathLike],
        checkpoint_every: int,
        resume: bool,
    ) -> TrainingHistory:
        """Epoch loop of :meth:`fit` (runs inside the precision scope)."""
        if self.augmentation is not None:
            x_train, y_train = augment_dataset(
                x_train, y_train, self.augmentation, seed=self.seed + 7, copies=1
            )
            x_val, y_val = augment_dataset(
                x_val, y_val, self.augmentation, seed=self.seed + 13, copies=1
            )

        optimizer = AdamW(
            self.model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )
        scheduler = ReduceLROnPlateau(
            optimizer,
            factor=self.config.lr_factor,
            patience=self.config.lr_patience,
            min_lr=self.config.min_lr,
        )
        history = TrainingHistory()
        best_state: Optional[Dict[str, np.ndarray]] = None

        run = telemetry.active_run()
        ckpt_path: Optional[pathlib.Path] = None
        if checkpoint_dir is not None:
            ckpt_path = pathlib.Path(checkpoint_dir) / CHECKPOINT_FILENAME
        elif run is not None and checkpoint_every > 0 and getattr(run, "dir", None) is not None:
            # ``getattr`` guard: sweep workers install a directory-less
            # telemetry shim (repro.parallel.WorkerTelemetry, dir=None).
            ckpt_path = run.dir / "checkpoints" / CHECKPOINT_FILENAME

        start_epoch = 0
        stopped = False
        resumed = False
        if resume and ckpt_path is not None and ckpt_path.exists():
            history, best_state, stopped = self._restore_checkpoint(
                ckpt_path, optimizer, scheduler
            )
            start_epoch = history.epochs_run
            resumed = True

        if run is not None:
            run.update_manifest(
                training_config=self.config,
                model=type(self.model).__name__,
                seed=self.seed,
                variation_aware=self.variation_aware,
                precision=self.config.precision,
                backends={
                    "mc_backend": self.config.mc_backend,
                    "scan_backend": self.config.scan_backend,
                    "graph_backend": self.config.graph_backend,
                },
                checkpoint=str(ckpt_path) if ckpt_path is not None else None,
            )
        telemetry.emit(
            "fit_start",
            model=type(self.model).__name__,
            max_epochs=self.config.max_epochs,
            start_epoch=start_epoch,
            resumed=resumed,
            variation_aware=self.variation_aware,
            mc_backend=self.config.mc_backend,
            scan_backend=self.config.scan_backend,
            graph_backend=self.config.graph_backend,
            precision=self.config.precision,
            n_train=int(np.asarray(x_train).shape[0]),
            n_val=int(np.asarray(x_val).shape[0]),
        )

        if stopped:  # resumed a finished run — nothing left to train
            start_epoch = self.config.max_epochs

        for epoch in range(start_epoch, self.config.max_epochs):
            epoch_start = time.perf_counter()
            optimizer.zero_grad()
            loss = self._loss(x_train, y_train)
            draw_losses = self._last_draw_losses
            with Stopwatch() as sw, telemetry.span("backward"):
                loss.backward()
            mc_counters.record_backward(sw.elapsed)
            with telemetry.span("optimizer_step"):
                optimizer.step()

            with telemetry.span("validation"):
                val_loss = self._eval_loss(x_val, y_val)
            history.train_loss.append(float(loss.item()))
            history.val_loss.append(val_loss)
            history.learning_rate.append(optimizer.lr)
            history.epochs_run = epoch + 1

            if val_loss < history.best_val_loss:
                history.best_val_loss = val_loss
                history.best_epoch = epoch
                best_state = self.model.state_dict()

            scheduler.step(val_loss)
            stopped = scheduler.should_stop()

            if run is not None:
                event = {
                    "epoch": epoch,
                    "train_loss": history.train_loss[-1],
                    "val_loss": val_loss,
                    "lr": history.learning_rate[-1],
                    "epoch_s": time.perf_counter() - epoch_start,
                    "best_val_loss": history.best_val_loss,
                    "best_epoch": history.best_epoch,
                }
                if draw_losses is not None and draw_losses.size:
                    event["mc_draws"] = int(draw_losses.size)
                    event["mc_loss_mean"] = float(draw_losses.mean())
                    event["mc_loss_std"] = float(draw_losses.std())
                run.emit("epoch", **event)

            if (
                ckpt_path is not None
                and checkpoint_every > 0
                and ((epoch + 1) % checkpoint_every == 0 or stopped)
            ):
                ckpt_path.parent.mkdir(parents=True, exist_ok=True)
                self.save_checkpoint(
                    ckpt_path, optimizer, scheduler, history, best_state, stopped
                )
                telemetry.emit("checkpoint", epoch=epoch, path=str(ckpt_path))

            if stopped:
                break
            if verbose and epoch % 50 == 0:
                print(
                    f"epoch {epoch:4d}  train {history.train_loss[-1]:.4f}  "
                    f"val {val_loss:.4f}  lr {optimizer.lr:.2e}"
                )

        telemetry.emit(
            "fit_end",
            epochs_run=history.epochs_run,
            best_val_loss=history.best_val_loss,
            best_epoch=history.best_epoch,
            stopped=stopped,
        )

        if best_state is not None:
            self.model.load_state_dict(best_state)
        # Leave the model deterministic: evaluation utilities install
        # their own variation samplers explicitly.
        if self._is_printed:
            self.model.set_sampler(ideal_sampler())
        return history
