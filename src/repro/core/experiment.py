"""Experiment harness regenerating every table and figure of the paper.

Entry points (one per artefact):

* :func:`run_table1` — accuracy of Elman RNN / baseline pTPNC /
  robustness-aware ADAPT-pNC under ±10 % variation + perturbed inputs;
* :func:`run_table2` — average runtime comparison;
* :func:`run_table3` — hardware costs (delegates to :mod:`repro.hw`);
* :func:`run_fig5` — accuracy collapse of the no-variation-aware
  baseline under variation and perturbation;
* :func:`run_fig6` — augmentation showcase on PowerCons;
* :func:`run_fig7_ablation` — VA / AT / SO-LF ablation;
* :func:`run_mu_extraction` — the SPICE μ-range study of Sec. III-2.

Every function takes an :class:`ExperimentConfig`; ``paper()`` matches
the published protocol, ``ci()`` and ``smoke()`` shrink seeds / epochs /
datasets while exercising the identical code path.

The big grids (:func:`run_table1`, :func:`run_fig7_ablation`) are
decomposed into independent ``(dataset × model × seed)`` **cells** and
executed through the :mod:`repro.parallel` orchestrator: pass
``executor="parallel"`` (or a full :class:`~repro.parallel.SweepOptions`
via ``sweep=``) to shard the cells across worker processes with
timeouts, retries and an on-disk resume cache.  The default
``executor="serial"`` runs the identical cells in-process and is the
bit-equal oracle — both executors produce identical tables because
every cell derives all of its randomness from its own coordinates.

When executed inside a :class:`repro.telemetry.Run`, the harness emits
one ``experiment`` event per table/figure cell as it is produced (plus
``sweep.*`` events around sharded campaigns), so a long regeneration
can be watched live with ``python -m repro runs tail`` and
post-mortemed from ``events.jsonl``.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..augment import AugmentationConfig, default_config, perturb
from ..data import DATASET_INFO, dataset_names, load_dataset
from ..utils.timing import time_callable
from .. import telemetry
from .evaluation import accuracy, evaluate_under_variation, select_top_k
from .models import AdaptPNC, ElmanClassifier, PTPNC
from .training import Trainer, TrainingConfig

__all__ = [
    "ExperimentConfig",
    "ModelResult",
    "TABLE1_RECIPES",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig5",
    "run_fig6",
    "run_fig7_ablation",
    "run_mu_extraction",
    "format_table1",
    "format_fig7",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs shared by every experiment entry point."""

    datasets: Tuple[str, ...] = tuple(DATASET_INFO)
    n_samples: int = 150
    seeds: Tuple[int, ...] = tuple(range(10))
    training: TrainingConfig = field(default_factory=TrainingConfig.paper)
    eval_delta: float = 0.10
    eval_mc: int = 10
    top_k: int = 3

    def __post_init__(self) -> None:
        unknown = set(self.datasets) - set(DATASET_INFO)
        if unknown:
            raise ValueError(f"unknown datasets: {sorted(unknown)}")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")

    @staticmethod
    def paper() -> "ExperimentConfig":
        """The published protocol: 15 datasets, 10 seeds, full training."""
        return ExperimentConfig()

    @staticmethod
    def ci() -> "ExperimentConfig":
        """Minutes-scale configuration (all datasets, short training)."""
        return ExperimentConfig(
            n_samples=90,
            seeds=(0, 1),
            training=TrainingConfig.ci(),
            eval_mc=5,
            top_k=2,
        )

    @staticmethod
    def smoke(datasets: Sequence[str] = ("Slope", "GPOVY", "PowerCons")) -> "ExperimentConfig":
        """Sub-minute configuration for tests and default benchmarks."""
        return ExperimentConfig(
            datasets=tuple(datasets),
            n_samples=90,
            seeds=(0,),
            training=replace(TrainingConfig.ci(), max_epochs=50, lr_patience=8),
            eval_mc=3,
            top_k=1,
        )


@dataclass
class ModelResult:
    """Mean ± std accuracy of one model on one dataset.

    ``n_failed`` counts sweep cells that never produced a value (after
    their retry budget); a result whose *every* cell failed carries NaN
    statistics but still renders, so a partially degraded sweep always
    yields a complete table with its failures annotated.
    """

    mean: float
    std: float
    n_failed: int = 0

    @classmethod
    def failed(cls, n_failed: int) -> "ModelResult":
        """Placeholder for a table entry whose every cell failed."""
        return cls(mean=math.nan, std=math.nan, n_failed=n_failed)

    @property
    def ok(self) -> bool:
        """Whether at least one cell produced a value."""
        return math.isfinite(self.mean)

    def __repr__(self) -> str:
        if not self.ok:
            return f"FAILED ({self.n_failed} cells)"
        base = f"{self.mean:.3f} ± {self.std:.3f}"
        if self.n_failed:
            base += f" [{self.n_failed} failed]"
        return base


def _build_model(kind: str, n_classes: int, seed: int):
    rng = np.random.default_rng(seed)
    if kind == "elman":
        return ElmanClassifier(n_classes, rng=rng)
    if kind == "ptpnc":
        return PTPNC(n_classes, rng=rng)
    if kind == "adapt":
        return AdaptPNC(n_classes, rng=rng)
    raise ValueError(f"unknown model kind {kind!r}")


def _train_one(
    kind: str,
    dataset,
    seed: int,
    config: ExperimentConfig,
    augmentation: Optional[AugmentationConfig],
    variation_aware: bool,
):
    """Train one (model kind, seed) pair; returns (model, clean test acc)."""
    model = _build_model(kind, dataset.info.n_classes, seed)
    trainer = Trainer(
        model,
        config.training,
        variation_aware=variation_aware and kind != "elman",
        augmentation=augmentation,
        seed=seed,
    )
    # checkpoint_every=0: many fits share one experiment run — the
    # single default checkpoint slot would just be overwritten.
    trainer.fit(
        dataset.x_train,
        dataset.y_train,
        dataset.x_val,
        dataset.y_val,
        checkpoint_every=0,
    )
    if hasattr(model, "set_sampler"):
        from ..circuits import ideal_sampler

        model.set_sampler(ideal_sampler())
    return model, accuracy(model, dataset.x_test, dataset.y_test)


def _robust_accuracy(
    model,
    x_test: np.ndarray,
    y_test: np.ndarray,
    config: ExperimentConfig,
    augmentation: Optional[AugmentationConfig],
    seed: int,
) -> float:
    """The paper's measurement: perturbed test set + component variation."""
    x_eval = (
        perturb(x_test, augmentation, seed=seed + 31) if augmentation is not None else x_test
    )
    result = evaluate_under_variation(
        model, x_eval, y_test, delta=config.eval_delta, mc_samples=config.eval_mc, seed=seed
    )
    return result.mean


#: The three Table-I training recipes, keyed by model kind.
TABLE1_RECIPES: Dict[str, Dict[str, object]] = {
    "elman": dict(augmentation=None, variation_aware=False),
    "ptpnc": dict(augmentation=None, variation_aware=False),
    "adapt": dict(augmentation="per-dataset", variation_aware=True),
}


def _resolve_sweep(executor: Optional[str], sweep):
    """Coerce the ``executor``/``sweep`` pair into one SweepOptions."""
    from ..parallel import SweepOptions

    if sweep is not None:
        if executor is not None and executor != sweep.executor:
            raise ValueError(
                f"conflicting executors: executor={executor!r} vs sweep.executor="
                f"{sweep.executor!r}"
            )
        return sweep
    return SweepOptions(executor=executor or "serial")


def _table1_cell(
    config: ExperimentConfig, dataset_name: str, kind: str, seed_index: int
) -> Dict[str, float]:
    """One Table-I sweep cell: train one (dataset, kind, seed) model.

    A pure function of its arguments — every random draw (init,
    augmentation, variation sampling, robust evaluation) derives from
    the cell's own seeds through independent child streams, so the
    value is identical whether the cell runs serially, in another
    process, or in any order relative to its siblings.
    """
    dataset = load_dataset(dataset_name, n_samples=config.n_samples, seed=0)
    recipe = TABLE1_RECIPES[kind]
    aug = (
        default_config(dataset_name) if recipe["augmentation"] == "per-dataset" else None
    )
    seed = config.seeds[seed_index]
    model, clean_acc = _train_one(
        kind, dataset, seed, config, aug, recipe["variation_aware"]
    )
    eval_aug = aug if aug is not None else default_config(dataset_name)
    robust = _robust_accuracy(
        model, dataset.x_test, dataset.y_test, config, eval_aug, seed=seed_index
    )
    return {"clean_acc": float(clean_acc), "robust_acc": float(robust)}


def _table1_cells(config: ExperimentConfig):
    """Submission-ordered sweep cells of the Table-I grid."""
    from ..parallel import SweepCell

    return [
        SweepCell(
            key=("table1", name, kind, str(i)), args=(config, name, kind, i)
        )
        for name in config.datasets
        for kind in TABLE1_RECIPES
        for i in range(len(config.seeds))
    ]


def _collect_seed_cells(outcomes, artefact: str, name: str, kind: str, n_seeds: int):
    """Ordered (ok outcomes, failure count) of one table entry's seeds."""
    outs = [outcomes[(artefact, name, kind, str(i))] for i in range(n_seeds)]
    ok = [o for o in outs if o.ok]
    return ok, len(outs) - len(ok)


def run_table1(
    config: Optional[ExperimentConfig] = None,
    verbose: bool = False,
    executor: Optional[str] = None,
    sweep=None,
) -> Dict[str, Dict[str, ModelResult]]:
    """Regenerate Table I.

    For each dataset and model kind: train one model per seed, select
    the top-k by clean test accuracy (the paper's top-3 rule), then
    evaluate each selected model on the perturbed test set under
    ±10 % component variation.  Returns
    ``{dataset: {"elman"|"ptpnc"|"adapt": ModelResult}}`` plus an
    ``"Average"`` entry.

    ``executor`` selects the sweep executor (``"serial"`` oracle by
    default, ``"parallel"`` for sharded worker processes); ``sweep``
    accepts a full :class:`~repro.parallel.SweepOptions` (timeouts,
    retries, resume cache).  Both executors are bit-equal.  Cells that
    fail after their retry budget degrade into annotated
    :class:`ModelResult` placeholders instead of aborting the run.
    """
    from ..parallel import run_cells

    config = config or ExperimentConfig.paper()
    options = _resolve_sweep(executor, sweep)
    outcomes = run_cells(
        _table1_cell,
        _table1_cells(config),
        options,
        fingerprint={
            "artefact": "table1",
            "config": asdict(config),
            # Explicit so a precision-policy change can never silently
            # reuse cached cells, even if the config layout evolves.
            "precision": config.training.precision,
        },
    )

    table: Dict[str, Dict[str, ModelResult]] = {}
    for name in config.datasets:
        table[name] = {}
        for kind in TABLE1_RECIPES:
            ok, n_failed = _collect_seed_cells(
                outcomes, "table1", name, kind, len(config.seeds)
            )
            if not ok:
                table[name][kind] = ModelResult.failed(n_failed)
            else:
                top = select_top_k(
                    [o.value["clean_acc"] for o in ok], k=config.top_k
                )
                robust = [ok[i].value["robust_acc"] for i in top]
                table[name][kind] = ModelResult(
                    mean=float(np.mean(robust)),
                    std=float(np.std(robust)),
                    n_failed=n_failed,
                )
            telemetry.emit(
                "experiment",
                artefact="table1",
                dataset=name,
                model=kind,
                robust_mean=table[name][kind].mean,
                robust_std=table[name][kind].std,
                n_seeds=len(config.seeds),
                n_failed=n_failed,
            )
            if verbose:
                print(f"{name:<10} {kind:<6} {table[name][kind]}")

    table["Average"] = {}
    for kind in TABLE1_RECIPES:
        entries = [table[d][kind] for d in config.datasets]
        finite = [e for e in entries if e.ok]
        n_failed = sum(e.n_failed for e in entries)
        if not finite:
            table["Average"][kind] = ModelResult.failed(n_failed)
        else:
            table["Average"][kind] = ModelResult(
                mean=float(np.mean([e.mean for e in finite])),
                std=float(np.mean([e.std for e in finite])),
                n_failed=n_failed,
            )
    return table


def format_table1(table: Dict[str, Dict[str, ModelResult]]) -> str:
    """Render a Table-I-shaped report."""
    from ..utils.tables import render_table

    rows = []
    for name, entry in table.items():
        rows.append(
            [name, repr(entry["elman"]), repr(entry["ptpnc"]), repr(entry["adapt"])]
        )
    return render_table(
        ["Dataset", "Elman RNN (ref)", "pTPNC (baseline)", "ADAPT-pNC (proposed)"], rows
    )


def run_table2(
    config: Optional[ExperimentConfig] = None,
    dataset_name: str = "PowerCons",
    repeats: int = 3,
) -> Dict[str, float]:
    """Regenerate Table II: average wall-clock time of one training step.

    One full-batch forward+backward+update per model, with each model's
    own training policy (ADAPT-pNC pays for Monte-Carlo sampling and the
    augmented training set).  Returns seconds per step.
    """
    config = config or ExperimentConfig.ci()
    dataset = load_dataset(dataset_name, n_samples=config.n_samples, seed=0)

    timings: Dict[str, float] = {}
    setups = {
        "elman": dict(variation_aware=False, augmentation=None),
        "ptpnc": dict(variation_aware=False, augmentation=None),
        "adapt": dict(variation_aware=True, augmentation=default_config(dataset_name)),
    }
    for kind, setup in setups.items():
        model = _build_model(kind, dataset.info.n_classes, seed=0)
        trainer = Trainer(
            model,
            replace(config.training, max_epochs=1),
            variation_aware=setup["variation_aware"] and kind != "elman",
            augmentation=setup["augmentation"],
            seed=0,
        )
        timings[kind] = time_callable(
            lambda t=trainer, d=dataset: t.fit(
                d.x_train, d.y_train, d.x_val, d.y_val, checkpoint_every=0
            ),
            repeats=repeats,
        )
        telemetry.emit(
            "experiment",
            artefact="table2",
            dataset=dataset_name,
            model=kind,
            seconds_per_step=timings[kind],
            repeats=repeats,
        )
    return timings


def run_table3(config: Optional[ExperimentConfig] = None):
    """Regenerate Table III (hardware costs); see :mod:`repro.hw`."""
    from ..hw import hardware_report

    config = config or ExperimentConfig.paper()
    return hardware_report(datasets=config.datasets)


def run_fig5(
    config: Optional[ExperimentConfig] = None,
    dataset_name: str = "Slope",
) -> Dict[str, float]:
    """Regenerate Fig. 5: the no-variation-aware baseline collapses.

    Trains a clean baseline pTPNC and reports accuracy on the four test
    conditions: clean/perturbed data × ideal/±10 % components.
    """
    config = config or ExperimentConfig.ci()
    dataset = load_dataset(dataset_name, n_samples=config.n_samples, seed=0)
    accs = []
    for seed in config.seeds:
        model, _ = _train_one("ptpnc", dataset, seed, config, None, variation_aware=False)
        x_pert = perturb(dataset.x_test, default_config(dataset_name), seed=seed)
        accs.append(
            {
                "clean_ideal": evaluate_under_variation(
                    model, dataset.x_test, dataset.y_test, delta=0.0, mc_samples=1
                ).mean,
                "clean_varied": evaluate_under_variation(
                    model,
                    dataset.x_test,
                    dataset.y_test,
                    delta=config.eval_delta,
                    mc_samples=config.eval_mc,
                    seed=seed,
                ).mean,
                "perturbed_ideal": evaluate_under_variation(
                    model, x_pert, dataset.y_test, delta=0.0, mc_samples=1
                ).mean,
                "perturbed_varied": evaluate_under_variation(
                    model,
                    x_pert,
                    dataset.y_test,
                    delta=config.eval_delta,
                    mc_samples=config.eval_mc,
                    seed=seed,
                ).mean,
            }
        )
    return {key: float(np.mean([a[key] for a in accs])) for key in accs[0]}


def run_fig6(dataset_name: str = "PowerCons", seed: int = 0) -> Dict[str, np.ndarray]:
    """Regenerate Fig. 6: one PowerCons series under each augmentation."""
    from ..augment import (
        FrequencyNoise,
        Jitter,
        MagnitudeScale,
        TimeWarp,
    )

    dataset = load_dataset(dataset_name, n_samples=60, seed=seed)
    series = dataset.x_train[:1]
    rng = np.random.default_rng(seed)
    return {
        "original": series[0],
        "jittering": Jitter(0.08)(series, rng)[0],
        "time_warping": TimeWarp(0.25)(series, rng)[0],
        "magnitude_scaling": MagnitudeScale(0.25)(series, rng)[0],
        "frequency_domain": FrequencyNoise(0.25)(series, rng)[0],
    }


#: The five training configurations of the Fig. 7 ablation.
ABLATION_CONFIGS: Dict[str, Dict[str, bool]] = {
    "baseline": dict(va=False, at=False, so=False),
    "va": dict(va=True, at=False, so=False),
    "at": dict(va=False, at=True, so=False),
    "so_lf": dict(va=False, at=False, so=True),
    "va_so_at": dict(va=True, at=True, so=True),
}


def _fig7_cell(
    config: ExperimentConfig, dataset_name: str, cfg_name: str, seed_index: int
) -> Dict[str, float]:
    """One Fig.-7 sweep cell: train one (dataset, ablation, seed) model.

    Like :func:`_table1_cell` this is a pure function of its
    coordinates, so serial and parallel execution are bit-equal.
    """
    dataset = load_dataset(dataset_name, n_samples=config.n_samples, seed=0)
    aug = default_config(dataset_name)
    flags = ABLATION_CONFIGS[cfg_name]
    kind = "adapt" if flags["so"] else "ptpnc"
    seed = config.seeds[seed_index]
    model, _ = _train_one(
        kind,
        dataset,
        seed,
        config,
        aug if flags["at"] else None,
        variation_aware=flags["va"],
    )
    clean = evaluate_under_variation(
        model,
        dataset.x_test,
        dataset.y_test,
        delta=config.eval_delta,
        mc_samples=config.eval_mc,
        seed=seed,
    ).mean
    x_pert = perturb(dataset.x_test, aug, seed=seed + 97)
    perturbed = evaluate_under_variation(
        model,
        x_pert,
        dataset.y_test,
        delta=config.eval_delta,
        mc_samples=config.eval_mc,
        seed=seed,
    ).mean
    return {"clean_acc": float(clean), "perturbed_acc": float(perturbed)}


def _fig7_cells(config: ExperimentConfig):
    """Submission-ordered sweep cells of the Fig.-7 ablation grid."""
    from ..parallel import SweepCell

    return [
        SweepCell(
            key=("fig7", name, cfg_name, str(i)), args=(config, name, cfg_name, i)
        )
        for name in config.datasets
        for cfg_name in ABLATION_CONFIGS
        for i in range(len(config.seeds))
    ]


def run_fig7_ablation(
    config: Optional[ExperimentConfig] = None,
    verbose: bool = False,
    executor: Optional[str] = None,
    sweep=None,
) -> Dict[str, Dict[str, ModelResult]]:
    """Regenerate Fig. 7: mean accuracy of the five ablation configs.

    Each configuration toggles variation-aware training (VA), augmented
    training (AT) and second-order filters (SO-LF).  Accuracy is
    reported on clean and perturbed test data, both under ±10 %
    component variation (the paper's "10 % physical variation
    scenario").  Returns ``{config: {"clean"|"perturbed": ModelResult}}``
    averaged over datasets.

    ``executor``/``sweep`` select the sweep executor exactly as in
    :func:`run_table1` (serial oracle by default, bit-equal parallel
    sharding on request); failed cells are dropped from the averages
    and counted in ``ModelResult.n_failed``.
    """
    from ..parallel import run_cells

    config = config or ExperimentConfig.ci()
    options = _resolve_sweep(executor, sweep)
    outcomes = run_cells(
        _fig7_cell,
        _fig7_cells(config),
        options,
        fingerprint={
            "artefact": "fig7",
            "config": asdict(config),
            "precision": config.training.precision,
        },
    )

    per_config: Dict[str, Dict[str, List[float]]] = {
        name: {"clean": [], "perturbed": []} for name in ABLATION_CONFIGS
    }
    failed: Dict[str, int] = {name: 0 for name in ABLATION_CONFIGS}
    for name in config.datasets:
        for cfg_name in ABLATION_CONFIGS:
            ok, n_failed = _collect_seed_cells(
                outcomes, "fig7", name, cfg_name, len(config.seeds)
            )
            accs_clean = [o.value["clean_acc"] for o in ok]
            accs_pert = [o.value["perturbed_acc"] for o in ok]
            per_config[cfg_name]["clean"].extend(accs_clean)
            per_config[cfg_name]["perturbed"].extend(accs_pert)
            failed[cfg_name] += n_failed
            telemetry.emit(
                "experiment",
                artefact="fig7",
                dataset=name,
                ablation=cfg_name,
                clean_mean=float(np.mean(accs_clean)) if accs_clean else math.nan,
                perturbed_mean=float(np.mean(accs_pert)) if accs_pert else math.nan,
                n_seeds=len(config.seeds),
                n_failed=n_failed,
            )
            if verbose:
                clean_s = f"{np.mean(accs_clean):.3f}" if accs_clean else "FAILED"
                pert_s = f"{np.mean(accs_pert):.3f}" if accs_pert else "FAILED"
                print(f"{name:<10} {cfg_name:<9} clean {clean_s} pert {pert_s}")

    return {
        cfg_name: {
            mode: (
                ModelResult(
                    mean=float(np.mean(vals)),
                    std=float(np.std(vals)),
                    n_failed=failed[cfg_name],
                )
                if vals
                else ModelResult.failed(failed[cfg_name])
            )
            for mode, vals in modes.items()
        }
        for cfg_name, modes in per_config.items()
    }


def format_fig7(results: Dict[str, Dict[str, ModelResult]]) -> str:
    """Render the ablation as an ASCII table."""
    from ..utils.tables import render_table

    rows = [
        [name, repr(modes["clean"]), repr(modes["perturbed"])]
        for name, modes in results.items()
    ]
    return render_table(["Config", "Clean acc", "Perturbed acc"], rows)


def run_mu_extraction(samples: int = 20, seed: int = 0) -> Dict[str, float]:
    """Regenerate the μ-range study of Sec. III-2 via the MNA engine."""
    from ..circuits import extract_mu_range

    mu1, mu2 = extract_mu_range(samples=samples, rng=np.random.default_rng(seed))
    both = np.concatenate([mu1, mu2])
    return {
        "mu_min": float(both.min()),
        "mu_max": float(both.max()),
        "mu_mean": float(both.mean()),
        "within_paper_band": float(np.mean((both >= 1.0) & (both <= 1.3))),
    }
