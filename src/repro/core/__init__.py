"""Core models and experiment harness for the ADAPT-pNC reproduction."""

from .experiment import (
    ABLATION_CONFIGS,
    TABLE1_RECIPES,
    ExperimentConfig,
    ModelResult,
    format_fig7,
    format_table1,
    run_fig5,
    run_fig6,
    run_fig7_ablation,
    run_mu_extraction,
    run_table1,
    run_table2,
    run_table3,
)
from .evaluation import (
    EvaluationResult,
    accuracy,
    evaluate_under_model,
    evaluate_under_variation,
    select_top_k,
)
from .models import (
    LOGIT_SCALE,
    AdaptPNC,
    ElmanClassifier,
    PrintedTemporalClassifier,
    PTPNC,
)
from .calibration import CalibrationResult, calibrate_instance, calibration_study
from .dtypebench import (
    DTYPE_ACCURACY_TOL_PP,
    DTYPE_LOSS_RTOL,
    format_dtype_benchmark,
    run_dtype_benchmark,
)
from .mcbench import EQUIVALENCE_ATOL, format_mc_benchmark, run_mc_benchmark
from .scanbench import (
    SCAN_EQUIVALENCE_ATOL,
    SCAN_GRAD_ATOL,
    format_scan_benchmark,
    run_scan_benchmark,
)
from .search import ArchitectureResult, architecture_space, search_architecture
from .tapebench import format_tape_benchmark, run_tape_benchmark
from .streaming import (
    MultiStreamSession,
    StreamingClassifier,
    StreamingEvalResult,
    StreamingSession,
    evaluate_streaming,
)
from .tpb import PrintedTemporalProcessingBlock
from .training import (
    CHECKPOINT_FILENAME,
    GRAPH_BACKENDS,
    MC_BACKENDS,
    SCAN_BACKENDS,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    mc_cross_entropy,
)

__all__ = [
    "PrintedTemporalProcessingBlock",
    "ElmanClassifier",
    "PrintedTemporalClassifier",
    "PTPNC",
    "AdaptPNC",
    "LOGIT_SCALE",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "accuracy",
    "evaluate_under_variation",
    "evaluate_under_model",
    "select_top_k",
    "EvaluationResult",
    "ExperimentConfig",
    "ModelResult",
    "ABLATION_CONFIGS",
    "TABLE1_RECIPES",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig5",
    "run_fig6",
    "run_fig7_ablation",
    "run_mu_extraction",
    "format_table1",
    "format_fig7",
    "ArchitectureResult",
    "architecture_space",
    "search_architecture",
    "MultiStreamSession",
    "StreamingClassifier",
    "StreamingSession",
    "StreamingEvalResult",
    "evaluate_streaming",
    "calibrate_instance",
    "calibration_study",
    "CalibrationResult",
    "MC_BACKENDS",
    "SCAN_BACKENDS",
    "GRAPH_BACKENDS",
    "CHECKPOINT_FILENAME",
    "mc_cross_entropy",
    "run_mc_benchmark",
    "format_mc_benchmark",
    "EQUIVALENCE_ATOL",
    "run_scan_benchmark",
    "format_scan_benchmark",
    "SCAN_EQUIVALENCE_ATOL",
    "SCAN_GRAD_ATOL",
    "run_dtype_benchmark",
    "format_dtype_benchmark",
    "DTYPE_LOSS_RTOL",
    "DTYPE_ACCURACY_TOL_PP",
    "run_tape_benchmark",
    "format_tape_benchmark",
]
