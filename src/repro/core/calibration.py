"""Post-fabrication calibration of individual printed instances.

Variation-aware training makes the *average* fabricated circuit work;
an orthogonal lever is fixing up each instance after printing.  Printed
technology supports it: bias conductances can be trimmed post-print
(laser trimming, additional ink passes), while the crossbar weights and
filter components stay as fabricated.

:func:`calibrate_instance` freezes everything except the crossbar bias
surrogates θ_b, replays one *fixed* variation draw (the fabricated
instance), and fine-tunes the biases on a small calibration set — the
printed-electronics analogue of chip-in-the-loop trimming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..autograd import no_grad
from ..circuits import UniformVariation, VariationSampler
from ..nn import cross_entropy
from ..optim import Adam
from .models import PrintedTemporalClassifier

__all__ = ["CalibrationResult", "calibrate_instance", "calibration_study"]


@dataclass
class CalibrationResult:
    """Before/after accuracy of one fabricated instance."""

    instance_seed: int
    accuracy_before: float
    accuracy_after: float

    @property
    def gain(self) -> float:
        """Accuracy recovered by trimming."""
        return self.accuracy_after - self.accuracy_before

    def __repr__(self) -> str:
        return (
            f"CalibrationResult(instance={self.instance_seed}, "
            f"{self.accuracy_before:.3f} -> {self.accuracy_after:.3f}, "
            f"gain {self.gain:+.3f})"
        )


def _instance_accuracy(model, sampler, seed, x, y) -> float:
    sampler.reseed(seed)
    with no_grad():
        logits = model(x)
    return float((np.argmax(logits.data, axis=1) == np.asarray(y)).mean())


def calibrate_instance(
    model: PrintedTemporalClassifier,
    x_cal: np.ndarray,
    y_cal: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    instance_seed: int = 0,
    delta: float = 0.10,
    epochs: int = 40,
    lr: float = 0.02,
) -> CalibrationResult:
    """Trim one fabricated instance's bias conductances.

    The variation draw is pinned by re-seeding the sampler before every
    forward pass — the same ε realisation every time, i.e. one physical
    chip.  Only the θ_b parameters receive gradient updates; everything
    else is as-printed.  The trained model's parameters are restored
    afterwards (the trim would be applied to the physical instance, not
    to the design).
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    pristine = model.state_dict()
    original_sampler = model.sampler
    sampler = VariationSampler(
        model=UniformVariation(delta), rng=np.random.default_rng(instance_seed)
    )
    model.set_sampler(sampler)
    try:
        before = _instance_accuracy(model, sampler, instance_seed, x_test, y_test)

        biases = [block.crossbar.theta_b for block in model.blocks]
        optimizer = Adam(biases, lr=lr)
        for _ in range(epochs):
            sampler.reseed(instance_seed)  # the same fabricated chip
            optimizer.zero_grad()
            loss = cross_entropy(model(x_cal), y_cal)
            loss.backward()
            optimizer.step()

        after = _instance_accuracy(model, sampler, instance_seed, x_test, y_test)
        return CalibrationResult(
            instance_seed=instance_seed, accuracy_before=before, accuracy_after=after
        )
    finally:
        model.load_state_dict(pristine)
        model.set_sampler(original_sampler)


def calibration_study(
    model: PrintedTemporalClassifier,
    x_cal: np.ndarray,
    y_cal: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    instances: int = 5,
    delta: float = 0.10,
    epochs: int = 40,
) -> List[CalibrationResult]:
    """Calibrate several fabricated instances; returns per-instance results."""
    if instances < 1:
        raise ValueError("instances must be >= 1")
    return [
        calibrate_instance(
            model,
            x_cal,
            y_cal,
            x_test,
            y_test,
            instance_seed=seed,
            delta=delta,
            epochs=epochs,
        )
        for seed in range(instances)
    ]
