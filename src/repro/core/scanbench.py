"""Fused-vs-unfused filter-scan throughput measurement.

One shared harness behind ``benchmarks/bench_filter_scan.py`` and the
``python -m repro scan-bench`` CLI subcommand.  Two measurements:

1. **SO-LF kernel** — forward+backward through one
   :class:`~repro.circuits.SecondOrderLearnableFilter` bank at the
   acceptance workload (T=64, batch=32, draws=8) under both scan
   backends, with identical ε/μ/V₀ draws.  The fused custom-Function
   kernel must beat the node-per-step oracle by the acceptance factor
   (≥5×) while losses agree to :data:`SCAN_EQUIVALENCE_ATOL` and
   parameter gradients to :data:`SCAN_GRAD_ATOL`.
2. **End-to-end training** — a short CI-config ``Trainer.fit`` run per
   backend on identical models/data/seeds, recording epoch wall-clock
   (the whole-pipeline speedup, diluted by the crossbar/ptanh/optimizer
   work both backends share).

The record is JSON-serialisable and renders through
:func:`repro.report.render_report` (``filter_scan`` key).
"""

from __future__ import annotations

import gc
import time
from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from ..autograd import Tensor
from ..circuits import (
    SecondOrderLearnableFilter,
    UniformVariation,
    VariationSampler,
)
from ..utils.timing import Stopwatch
from .. import telemetry
from .models import AdaptPNC
from .training import Trainer, TrainingConfig

__all__ = [
    "run_scan_benchmark",
    "format_scan_benchmark",
    "SCAN_EQUIVALENCE_ATOL",
    "SCAN_GRAD_ATOL",
]

#: Fused and unfused losses must agree to this tolerance under shared
#: draws (the forwards perform bit-identical per-element arithmetic;
#: only reduction order in the loss differs).
SCAN_EQUIVALENCE_ATOL = 1e-10

#: Per-parameter gradient agreement between the analytic adjoint and
#: the node-per-step tape (accumulation order differs).
SCAN_GRAD_ATOL = 1e-8


def _make_filter(
    num_filters: int, seed: int, scan_backend: str
) -> SecondOrderLearnableFilter:
    sampler = VariationSampler(
        model=UniformVariation(0.10), rng=np.random.default_rng(seed + 7)
    )
    return SecondOrderLearnableFilter(
        num_filters,
        sampler=sampler,
        rng=np.random.default_rng(seed),
        scan_backend=scan_backend,
    )


def _solf_pass(
    flt: SecondOrderLearnableFilter, x: Tensor, draws: int, seed: int
) -> Dict[str, object]:
    """One forward+backward through the SO-LF bank with reseeded draws.

    Only the filter bank itself is timed: the surrogate objective
    ``L = mean(out²)`` and its output gradient ``2·out/out.size`` are
    formed outside the stopwatches, so the measurement isolates the
    scan kernels instead of diluting them with loss-node work both
    backends share.  The two backends produce bit-equal ``out``, hence
    bit-equal seed gradients, so the comparison stays exact.
    """
    flt.zero_grad()
    flt.sampler.reseed(seed + 31)
    with Stopwatch() as fw:
        with flt.sampler.batched(draws):
            out = flt(x)
    loss = float(np.mean(out.data**2))
    grad_seed = 2.0 * out.data / out.data.size  # dL/dout for mean(out²)
    with Stopwatch() as bw:
        out.backward(grad_seed)
    grads = {name: p.grad.copy() for name, p in flt.named_parameters()}
    return {
        "forward_s": fw.elapsed,
        "backward_s": bw.elapsed,
        "loss": loss,
        "grads": grads,
    }


def _bench_solf(
    seq_len: int, batch: int, draws: int, num_filters: int, repeats: int, seed: int
) -> Dict:
    """Best-of-``repeats`` SO-LF forward+backward per scan backend."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.uniform(-1.0, 1.0, size=(batch, seq_len, num_filters)))

    results: Dict[str, Dict] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for backend in ("unfused", "fused"):
            flt = _make_filter(num_filters, seed, backend)
            _solf_pass(flt, x, draws, seed)  # warm-up (allocator, caches)
            best_f: List[float] = []
            best_b: List[float] = []
            last: Dict[str, object] = {}
            for _ in range(repeats):
                last = _solf_pass(flt, x, draws, seed)
                best_f.append(last["forward_s"])
                best_b.append(last["backward_s"])
            results[backend] = {
                "forward_s": min(best_f),
                "backward_s": min(best_b),
                "loss": last["loss"],
                "grads": last["grads"],
            }
    finally:
        if gc_was_enabled:
            gc.enable()

    fused, unfused = results["fused"], results["unfused"]
    loss_delta = abs(fused["loss"] - unfused["loss"])
    grad_delta = max(
        float(np.max(np.abs(fused["grads"][name] - unfused["grads"][name])))
        for name in fused["grads"]
    )
    step_fused = fused["forward_s"] + fused["backward_s"]
    step_unfused = unfused["forward_s"] + unfused["backward_s"]
    return {
        "seq_len": int(seq_len),
        "batch": int(batch),
        "draws": int(draws),
        "num_filters": int(num_filters),
        "repeats": int(repeats),
        "fused_forward_s": fused["forward_s"],
        "fused_backward_s": fused["backward_s"],
        "unfused_forward_s": unfused["forward_s"],
        "unfused_backward_s": unfused["backward_s"],
        "fused_s": step_fused,
        "unfused_s": step_unfused,
        "speedup": step_unfused / max(step_fused, 1e-12),
        "loss_delta": loss_delta,
        "max_abs_grad_delta": grad_delta,
    }


def _bench_training(
    epochs: int, n_samples: int, seq_len: int, n_classes: int, seed: int
) -> Dict:
    """End-to-end ``Trainer.fit`` epoch wall-clock per scan backend."""
    rng = np.random.default_rng(seed + 1)
    x = rng.uniform(-1.0, 1.0, size=(n_samples, seq_len))
    y = rng.integers(0, n_classes, size=n_samples)
    split = max(1, n_samples // 5)
    x_train, y_train = x[split:], y[split:]
    x_val, y_val = x[:split], y[:split]

    out: Dict[str, Dict] = {}
    for backend in ("unfused", "fused"):
        model = AdaptPNC(n_classes, rng=np.random.default_rng(seed))
        config = replace(
            TrainingConfig.ci(), max_epochs=epochs, scan_backend=backend
        )
        trainer = Trainer(model, config, variation_aware=True, seed=seed)
        start = time.perf_counter()
        history = trainer.fit(x_train, y_train, x_val, y_val, checkpoint_every=0)
        elapsed = time.perf_counter() - start
        out[backend] = {
            "total_s": elapsed,
            "epochs": history.epochs_run,
            "epoch_s": elapsed / max(history.epochs_run, 1),
            "first_epoch_loss": history.train_loss[0],
            "final_train_loss": history.train_loss[-1],
        }
    return {
        "epochs": int(epochs),
        "n_samples": int(n_samples),
        "fused_epoch_s": out["fused"]["epoch_s"],
        "unfused_epoch_s": out["unfused"]["epoch_s"],
        "epoch_speedup": out["unfused"]["epoch_s"] / max(out["fused"]["epoch_s"], 1e-12),
        "first_epoch_loss_delta": abs(
            out["fused"]["first_epoch_loss"] - out["unfused"]["first_epoch_loss"]
        ),
        "fused_final_train_loss": out["fused"]["final_train_loss"],
        "unfused_final_train_loss": out["unfused"]["final_train_loss"],
    }


def run_scan_benchmark(
    seq_len: int = 64,
    batch: int = 32,
    draws: int = 8,
    num_filters: int = 8,
    repeats: int = 5,
    seed: int = 0,
    train_epochs: int = 5,
    train_samples: int = 24,
    train_seq_len: int = 32,
    n_classes: int = 3,
    include_training: bool = True,
) -> Dict:
    """Measure fused-vs-unfused scan throughput and verify equivalence.

    Returns a record with a ``solf`` section (the SO-LF kernel
    micro-benchmark at the acceptance workload) and, unless
    ``include_training=False``, a ``training`` section (end-to-end
    epoch wall-clock under ``Trainer.fit`` on the CI config).
    """
    solf = _bench_solf(seq_len, batch, draws, num_filters, repeats, seed)
    record: Dict = {
        "solf": solf,
        "equivalence_atol": SCAN_EQUIVALENCE_ATOL,
        "grad_atol": SCAN_GRAD_ATOL,
        "equivalent": bool(
            solf["loss_delta"] <= SCAN_EQUIVALENCE_ATOL
            and solf["max_abs_grad_delta"] <= SCAN_GRAD_ATOL
        ),
    }
    if include_training:
        record["training"] = _bench_training(
            train_epochs, train_samples, train_seq_len, n_classes, seed
        )
    # Same shared sink as mc-bench: the scan gauge inside mc_counters
    # doubles as a telemetry gauge, snapshotted into the event stream.
    telemetry.emit(
        "gauges", source="scan-bench", gauges=telemetry.gauges.snapshot()
    )
    return record


def format_scan_benchmark(record: Dict) -> str:
    """ASCII summary of a :func:`run_scan_benchmark` record."""
    from ..utils.tables import render_table

    solf = record["solf"]
    table = [
        [
            "unfused",
            f"{solf['unfused_forward_s'] * 1e3:.2f} ms",
            f"{solf['unfused_backward_s'] * 1e3:.2f} ms",
            f"{solf['unfused_s'] * 1e3:.2f} ms",
        ],
        [
            "fused",
            f"{solf['fused_forward_s'] * 1e3:.2f} ms",
            f"{solf['fused_backward_s'] * 1e3:.2f} ms",
            f"{solf['fused_s'] * 1e3:.2f} ms",
        ],
    ]
    header = ["scan backend", "forward", "backward", "fwd+bwd"]
    lines = [
        f"SO-LF bank: T={solf['seq_len']}, batch={solf['batch']}, "
        f"draws={solf['draws']}, n={solf['num_filters']}",
        render_table(header, table),
        f"speedup (fused over unfused): {solf['speedup']:.2f}x",
    ]
    verdict = "OK" if record["equivalent"] else "FAILED"
    lines.append(
        f"equivalence: |Δloss| = {solf['loss_delta']:.2e} "
        f"(tol {record['equivalence_atol']:.0e}), "
        f"max |Δgrad| = {solf['max_abs_grad_delta']:.2e} "
        f"(tol {record['grad_atol']:.0e}) — {verdict}"
    )
    training = record.get("training")
    if training:
        lines.append(
            f"Trainer.fit epoch wall-clock (CI config, {training['epochs']} epochs): "
            f"unfused {training['unfused_epoch_s'] * 1e3:.1f} ms → "
            f"fused {training['fused_epoch_s'] * 1e3:.1f} ms "
            f"({training['epoch_speedup']:.2f}x); first-epoch |Δloss| = "
            f"{training['first_epoch_loss_delta']:.2e}"
        )
    return "\n".join(lines)
