"""The three evaluated models.

* :class:`ElmanClassifier` — the hardware-agnostic 2-layer Elman RNN
  reference of Table I;
* :class:`PTPNC` — the baseline printed temporal processing
  neuromorphic circuit [8]: first-order filters, trained without
  variation awareness;
* :class:`AdaptPNC` — the proposed robustness-aware circuit with
  second-order learnable filters (SO-LF).

All are sequence classifiers over univariate series of shape
``(batch, time)``; logits are read from the network output at the final
time step (the circuit's output voltages after the sequence has been
streamed), scaled by a fixed factor so cross-entropy has usable
dynamic range over the bounded analog voltages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..circuits import (
    BASELINE_PDK,
    DEFAULT_DT,
    DEFAULT_PDK,
    PrintedPDK,
    VariationSampler,
    ideal_sampler,
)
from ..nn import ElmanRNN, Linear
from ..nn.containers import ModuleList
from ..nn.module import Module
from .tpb import PrintedTemporalProcessingBlock

__all__ = ["ElmanClassifier", "PrintedTemporalClassifier", "PTPNC", "AdaptPNC", "LOGIT_SCALE"]

#: Output voltages live in roughly [-1, 1]; the scale stretches them so
#: softmax can express confident predictions.
LOGIT_SCALE = 4.0


def _coerce_sequences(x, channels: int = 1) -> Tensor:
    """Coerce input series to ``(batch, time, channels)``.

    2-D input is treated as single-channel ``(batch, time)``; 3-D input
    must already carry the expected channel count (multivariate
    sensors, Fig. 4's multi-input pTPB).
    """
    # Tensor() resolves the active precision policy's compute dtype.
    t = x if isinstance(x, Tensor) else Tensor(np.asarray(x))
    if t.ndim == 2 and channels == 1:
        t = t.unsqueeze(2)
    if t.ndim != 3 or t.shape[2] != channels:
        raise ValueError(
            f"expected (batch, time) or (batch, time, {channels}) series, got {t.shape}"
        )
    return t


class ElmanClassifier(Module):
    """2-layer Elman RNN + linear head (the paper's reference model)."""

    def __init__(
        self,
        n_classes: int,
        hidden_size: int = 8,
        num_layers: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if n_classes < 2:
            raise ValueError("need at least 2 classes")
        rng = rng if rng is not None else np.random.default_rng()
        self.n_classes = n_classes
        self.rnn = ElmanRNN(1, hidden_size, num_layers=num_layers, rng=rng)
        self.head = Linear(hidden_size, n_classes, rng=rng)

    def forward(self, x) -> Tensor:
        """Logits ``(batch, n_classes)`` from series ``(batch, time)``."""
        seq = _coerce_sequences(x)
        outputs, _ = self.rnn(seq)
        return self.head(outputs[:, -1, :])


class PrintedTemporalClassifier(Module):
    """Stacked printed temporal network (pTPNC topology, Fig. 4).

    The default depth is the paper's 2 layers: one pTPB maps the single
    sensor rail to ``hidden_size`` columns, a second maps those to
    ``n_classes`` output voltages.  Passing ``hidden_sizes`` builds a
    deeper stack — one pTPB per entry plus the output block.
    Subclasses fix the filter order and the default variation policy.
    """

    def __init__(
        self,
        n_classes: int,
        hidden_size: Optional[int] = None,
        filter_order: int = 2,
        dt: float = DEFAULT_DT,
        sampler: Optional[VariationSampler] = None,
        pdk: PrintedPDK = DEFAULT_PDK,
        rng: Optional[np.random.Generator] = None,
        logit_scale: float = LOGIT_SCALE,
        hidden_sizes: Optional[tuple] = None,
        in_channels: int = 1,
    ) -> None:
        super().__init__()
        if n_classes < 2:
            raise ValueError("need at least 2 classes")
        if in_channels < 1:
            raise ValueError("in_channels must be positive")
        if hidden_sizes is not None and hidden_size is not None:
            raise ValueError("pass hidden_size or hidden_sizes, not both")
        if hidden_sizes is None:
            hidden_sizes = (hidden_size if hidden_size is not None else max(3, n_classes),)
        hidden_sizes = tuple(int(h) for h in hidden_sizes)
        if not hidden_sizes or any(h < 1 for h in hidden_sizes):
            raise ValueError("hidden sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        sampler = sampler if sampler is not None else ideal_sampler()
        self.n_classes = n_classes
        self.in_channels = in_channels
        self.hidden_sizes = hidden_sizes
        self.hidden_size = hidden_sizes[0]
        self.filter_order = filter_order
        self.logit_scale = logit_scale
        widths = (in_channels,) + hidden_sizes + (n_classes,)
        self.blocks = ModuleList(
            [
                PrintedTemporalProcessingBlock(
                    widths[i],
                    widths[i + 1],
                    filter_order,
                    dt=dt,
                    sampler=sampler,
                    pdk=pdk,
                    rng=rng,
                )
                for i in range(len(widths) - 1)
            ]
        )
        self.pdk = pdk

    @property
    def num_layers(self) -> int:
        """Number of temporal processing blocks."""
        return len(self.hidden_sizes) + 1

    def set_sampler(self, sampler: VariationSampler) -> None:
        """Swap the variation source in every block (train vs eval modes)."""
        for block in self.blocks:
            block.set_sampler(sampler)

    @property
    def sampler(self) -> VariationSampler:
        return self.blocks[0].sampler

    @property
    def scan_backend(self) -> str:
        """The filter banks' recurrence backend (``fused``/``unfused``)."""
        return self.blocks[0].scan_backend

    def set_scan_backend(self, backend: str) -> None:
        """Select the recurrence backend of every block's filter bank."""
        for block in self.blocks:
            block.set_scan_backend(backend)

    def forward(self, x) -> Tensor:
        """Logits ``(batch, n_classes)`` from ``(batch, time)`` series
        (single-channel) or ``(batch, time, in_channels)`` multivariate
        inputs.

        Inside a :meth:`~repro.circuits.VariationSampler.batched`
        context the network evaluates every Monte-Carlo hardware
        instance in a single vectorized pass and the logits gain a
        leading draws axis: ``(draws, batch, n_classes)``.
        """
        seq = _coerce_sequences(x, self.in_channels)
        for block in self.blocks:
            seq = block(seq)
        return seq[..., -1, :] * self.logit_scale


class PTPNC(PrintedTemporalClassifier):
    """Baseline pTPNC [8]: first-order filters, no variation awareness.

    Default hidden width follows the baseline topology of the hardware
    table: ``max(3, n_classes)``.  Defaults to the NANOARCH'23 design
    point (:data:`~repro.circuits.BASELINE_PDK`), whose lower-impedance
    crossbars and higher-bias transistor stages set the power baseline
    of Table III.
    """

    def __init__(
        self,
        n_classes: int,
        hidden_size: Optional[int] = None,
        dt: float = DEFAULT_DT,
        sampler: Optional[VariationSampler] = None,
        pdk: PrintedPDK = BASELINE_PDK,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        hidden = hidden_size if hidden_size is not None else max(3, n_classes)
        super().__init__(
            n_classes,
            hidden,
            filter_order=1,
            dt=dt,
            sampler=sampler,
            pdk=pdk,
            rng=rng,
        )


class AdaptPNC(PrintedTemporalClassifier):
    """Proposed ADAPT-pNC: SO-LF temporal blocks.

    The accuracy-driven design point of the paper uses a wider hidden
    layer than the baseline (reflected in its ≈1.9× device count,
    Table III): default ``max(3, n_classes) + 2``.
    """

    def __init__(
        self,
        n_classes: int,
        hidden_size: Optional[int] = None,
        dt: float = DEFAULT_DT,
        sampler: Optional[VariationSampler] = None,
        pdk: PrintedPDK = DEFAULT_PDK,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        hidden = hidden_size if hidden_size is not None else max(3, n_classes) + 2
        super().__init__(
            n_classes,
            hidden,
            filter_order=2,
            dt=dt,
            sampler=sampler,
            pdk=pdk,
            rng=rng,
        )
