"""Sequential-vs-batched Monte-Carlo throughput measurement.

One shared harness behind ``benchmarks/bench_mc_vectorization.py`` and
the ``python -m repro mc-bench`` CLI subcommand: it times the variation
-aware training objective (forward + backward) under both MC backends
at identical seeds, verifies that their losses agree to the equivalence
tolerance, and reports draw throughput and speedup.  The resulting
record is JSON-serialisable and renders through
:func:`repro.report.render_report` (``mc_vectorization`` key).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..utils.timing import Stopwatch, mc_counters
from .. import telemetry
from .models import AdaptPNC
from .training import Trainer, TrainingConfig

__all__ = ["run_mc_benchmark", "format_mc_benchmark", "EQUIVALENCE_ATOL"]

#: Batched and sequential losses must agree to this tolerance under a
#: shared seed (they draw bit-identical ε/μ/V₀; only floating-point
#: accumulation order differs).
EQUIVALENCE_ATOL = 1e-8


def _make_trainer(
    n_classes: int,
    mc_samples: int,
    backend: str,
    seed: int,
    config: TrainingConfig,
    scan_backend: str = "fused",
) -> Trainer:
    model = AdaptPNC(n_classes, rng=np.random.default_rng(seed))
    cfg = replace(
        config, mc_samples=mc_samples, mc_backend=backend, scan_backend=scan_backend
    )
    return Trainer(model, cfg, variation_aware=True, seed=seed)


def _time_objective(
    trainer: Trainer, x: np.ndarray, y: np.ndarray, repeats: int
) -> Dict[str, float]:
    """Best-of-``repeats`` seconds per objective forward and backward.

    The minimum over repeats is the standard noise-robust estimator for
    "how fast can this step go" — means are inflated by GC pauses and
    scheduler preemption, which matters when the benchmark shares a CI
    machine with other work.  Garbage collection is paused around the
    timed region (pytest-benchmark does the same).
    """
    import gc

    # Warm-up evaluation outside the timer (allocator, caches).
    trainer._loss(x, y)
    forward: List[float] = []
    backward: List[float] = []
    loss_value = 0.0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            trainer.model.zero_grad()
            with Stopwatch() as sw:
                loss = trainer._loss(x, y)
            forward.append(sw.elapsed)
            with Stopwatch() as sw:
                loss.backward()
            backward.append(sw.elapsed)
            loss_value = float(loss.item())
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "forward_s": min(forward),
        "backward_s": min(backward),
        "loss": loss_value,
    }


def run_mc_benchmark(
    draws_list: Sequence[int] = (2, 4, 8),
    n_samples: int = 40,
    seq_len: int = 32,
    n_classes: int = 3,
    repeats: int = 3,
    seed: int = 0,
    config: Optional[TrainingConfig] = None,
    scan_backend: str = "fused",
) -> Dict:
    """Measure sequential-vs-batched MC training throughput.

    For every draw count the two backends run on *identical* models,
    data and variation seeds; the record carries per-draw-count
    best-of-``repeats`` timings, the speedup, a draws/sec figure, and
    the max |loss| disagreement
    (which must stay below :data:`EQUIVALENCE_ATOL` — asserted by the
    benchmark, reported here).  ``scan_backend`` selects the filter-
    recurrence kernel used by *both* MC backends; per-scan-backend
    wall-clock is captured in the record's ``counters`` snapshot.
    """
    config = config if config is not None else TrainingConfig.ci()
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1.0, 1.0, size=(n_samples, seq_len))
    y = rng.integers(0, n_classes, size=n_samples)

    mc_counters.reset()
    rows: List[Dict] = []
    max_delta = 0.0
    for draws in draws_list:
        per_backend: Dict[str, Dict[str, float]] = {}
        for backend in ("sequential", "batched"):
            trainer = _make_trainer(
                n_classes, draws, backend, seed, config, scan_backend=scan_backend
            )
            per_backend[backend] = _time_objective(trainer, x, y, repeats)
        seq, bat = per_backend["sequential"], per_backend["batched"]
        delta = abs(seq["loss"] - bat["loss"])
        max_delta = max(max_delta, delta)
        step_seq = seq["forward_s"] + seq["backward_s"]
        step_bat = bat["forward_s"] + bat["backward_s"]
        rows.append(
            {
                "draws": int(draws),
                "sequential_s": step_seq,
                "batched_s": step_bat,
                "speedup": step_seq / max(step_bat, 1e-12),
                "sequential_draws_per_sec": draws / max(step_seq, 1e-12),
                "batched_draws_per_sec": draws / max(step_bat, 1e-12),
                "loss_delta": delta,
            }
        )
    record = {
        "rows": rows,
        "max_abs_loss_delta": max_delta,
        "equivalence_atol": EQUIVALENCE_ATOL,
        "equivalent": bool(max_delta <= EQUIVALENCE_ATOL),
        "n_samples": int(n_samples),
        "seq_len": int(seq_len),
        "repeats": int(repeats),
        "scan_backend": scan_backend,
        "counters": mc_counters.snapshot(),
    }
    # Benchmarks and training share one instrumentation sink: the same
    # mc_counters gauge feeds the record above and, when a telemetry
    # run is active, a structured ``gauges`` event in events.jsonl.
    telemetry.emit(
        "gauges", source="mc-bench", gauges=telemetry.gauges.snapshot()
    )
    return record


def format_mc_benchmark(record: Dict) -> str:
    """ASCII summary of a :func:`run_mc_benchmark` record."""
    from ..utils.tables import render_table

    table = [
        [
            str(row["draws"]),
            f"{row['sequential_s'] * 1e3:.1f} ms",
            f"{row['batched_s'] * 1e3:.1f} ms",
            f"{row['speedup']:.2f}x",
            f"{row['batched_draws_per_sec']:.1f}",
        ]
        for row in record["rows"]
    ]
    header = ["MC draws", "sequential/step", "batched/step", "speedup", "draws/s (batched)"]
    lines = [render_table(header, table)]
    verdict = "OK" if record["equivalent"] else "FAILED"
    lines.append(
        f"loss equivalence: max |Δ| = {record['max_abs_loss_delta']:.2e} "
        f"(tol {record['equivalence_atol']:.0e}) — {verdict}"
    )
    scan = (record.get("counters") or {}).get("scan") or {}
    if scan:
        parts = ", ".join(
            f"{backend}: {entry['seconds']*1e3:.1f} ms over {entry['calls']:.0f} scans"
            for backend, entry in sorted(scan.items())
        )
        lines.append(
            f"filter-scan wall-clock ({record.get('scan_backend', 'fused')} kernel "
            f"selected): {parts}"
        )
    return "\n".join(lines)
