"""Evaluation under process variation and input perturbation.

Implements the paper's measurement protocol (Sec. IV-B): trained models
are evaluated on an (optionally augmented/perturbed) test set while the
printed components are re-drawn with ±10 % variation per Monte-Carlo
hardware instance; reported accuracy is the mean over instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import no_grad
from ..circuits import (
    UniformVariation,
    VariationModel,
    VariationSampler,
    ideal_sampler,
)
from ..nn.module import Module

__all__ = [
    "accuracy",
    "evaluate_under_variation",
    "evaluate_under_model",
    "select_top_k",
    "EvaluationResult",
]


def accuracy(model: Module, x: np.ndarray, y: np.ndarray) -> float:
    """Single-forward classification accuracy (whatever sampler is installed)."""
    with no_grad():
        logits = model(x)
    pred = np.argmax(logits.data, axis=1)
    return float((pred == np.asarray(y)).mean())


@dataclass
class EvaluationResult:
    """Accuracy statistics over Monte-Carlo hardware instances."""

    mean: float
    std: float
    samples: np.ndarray

    def __repr__(self) -> str:
        return f"EvaluationResult(mean={self.mean:.3f}, std={self.std:.3f})"


def evaluate_under_variation(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    delta: float = 0.10,
    mc_samples: int = 10,
    seed: int = 0,
) -> EvaluationResult:
    """Mean accuracy over ``mc_samples`` fabricated-instance draws.

    Each draw installs fresh ±``delta`` component variations (plus
    sampled μ and V₀) and classifies the whole test set.  The model's
    original sampler is restored afterwards.  Hardware-agnostic models
    (no ``set_sampler``) are evaluated once, deterministically.
    """
    if not hasattr(model, "set_sampler"):
        acc = accuracy(model, x, y)
        return EvaluationResult(mean=acc, std=0.0, samples=np.array([acc]))
    if mc_samples < 1:
        raise ValueError("mc_samples must be >= 1")

    original = model.sampler
    try:
        if delta == 0.0:
            model.set_sampler(ideal_sampler())
            acc = accuracy(model, x, y)
            return EvaluationResult(mean=acc, std=0.0, samples=np.array([acc]))
        sampler = VariationSampler(
            model=UniformVariation(delta), rng=np.random.default_rng(seed)
        )
        model.set_sampler(sampler)
        samples = np.array([accuracy(model, x, y) for _ in range(mc_samples)])
        return EvaluationResult(
            mean=float(samples.mean()), std=float(samples.std()), samples=samples
        )
    finally:
        model.set_sampler(original)


def evaluate_under_model(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    variation: VariationModel,
    mc_samples: int = 10,
    seed: int = 0,
) -> EvaluationResult:
    """Mean accuracy under an arbitrary variation distribution.

    Generalises :func:`evaluate_under_variation` to any
    :class:`~repro.circuits.VariationModel` — e.g. the Gaussian-mixture
    device-level model of Rasheed et al. [24] — so robustness can be
    compared across printing-process assumptions.
    """
    if not hasattr(model, "set_sampler"):
        acc = accuracy(model, x, y)
        return EvaluationResult(mean=acc, std=0.0, samples=np.array([acc]))
    if mc_samples < 1:
        raise ValueError("mc_samples must be >= 1")
    original = model.sampler
    try:
        sampler = VariationSampler(model=variation, rng=np.random.default_rng(seed))
        model.set_sampler(sampler)
        samples = np.array([accuracy(model, x, y) for _ in range(mc_samples)])
        return EvaluationResult(
            mean=float(samples.mean()), std=float(samples.std()), samples=samples
        )
    finally:
        model.set_sampler(original)


def select_top_k(
    scores: Sequence[float], k: int = 3
) -> List[int]:
    """Indices of the top-``k`` scores (descending), per the paper's
    "top three models for each dataset based on their accuracy" rule."""
    if k < 1:
        raise ValueError("k must be >= 1")
    order = np.argsort(scores)[::-1]
    return [int(i) for i in order[: min(k, len(order))]]
