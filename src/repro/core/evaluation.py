"""Evaluation under process variation and input perturbation.

Implements the paper's measurement protocol (Sec. IV-B): trained models
are evaluated on an (optionally augmented/perturbed) test set while the
printed components are re-drawn with ±10 % variation per Monte-Carlo
hardware instance; reported accuracy is the mean over instances.

All Monte-Carlo instances are evaluated in one vectorized forward by
default (the sampler's batched-draws context stacks logits as
``(draws, batch, classes)``); the original per-instance loop is kept
behind ``vectorized=False`` as the reference oracle.  Both paths draw
identical ε/μ/V₀ values (one child random stream per draw), so their
accuracy samples are bit-equal.

Deterministic fast path: when no variation is requested
(``mc_samples=0``, ``delta=0`` or a zero-spread variation model) the
model is evaluated exactly once under the ideal sampler instead of
re-entering the variation context per sample.

Telemetry: when a :class:`repro.telemetry.Run` is active, each
:func:`evaluate_under_variation` / :func:`evaluate_under_model` call
emits one ``evaluation`` event (accuracy mean/std, draw count, backend,
wall-clock) and the MC forwards are timed as ``evaluation`` spans.
With no active run every hook is a single ``None``-check no-op.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import no_grad
from ..autograd.precision import compute_dtype, get_precision, use_precision
from ..autograd.tape import (
    CompiledTape,
    TapeCapture,
    TapeError,
    tape_counters,
    tracing,
)
from ..circuits import (
    NoVariation,
    UniformVariation,
    VariationModel,
    VariationSampler,
    ideal_sampler,
)
from ..nn.module import Module
from ..utils.timing import Stopwatch, mc_counters
from .. import telemetry

__all__ = [
    "accuracy",
    "evaluate_under_variation",
    "evaluate_under_model",
    "select_top_k",
    "EvaluationResult",
]


def _check_graph_backend(graph_backend: Optional[str]) -> None:
    """Reject unknown ``graph_backend`` names (``None`` keeps default)."""
    if graph_backend is not None and graph_backend not in ("interpreted", "tape"):
        raise ValueError(
            f"graph_backend must be None, 'interpreted' or 'tape', got {graph_backend!r}"
        )


def accuracy(model: Module, x: np.ndarray, y: np.ndarray) -> float:
    """Single-forward classification accuracy (whatever sampler is installed)."""
    with no_grad():
        logits = model(x)
    pred = np.argmax(logits.data, axis=1)
    return float((pred == np.asarray(y)).mean())


@dataclass
class EvaluationResult:
    """Accuracy statistics over Monte-Carlo hardware instances."""

    mean: float
    std: float
    samples: np.ndarray

    def __repr__(self) -> str:
        return f"EvaluationResult(mean={self.mean:.3f}, std={self.std:.3f})"


@contextmanager
def _scan_backend(model: Module, backend: Optional[str]) -> Iterator[None]:
    """Temporarily select the model's filter-recurrence backend.

    ``None`` (the default) leaves whatever backend the model already
    uses; models without filter banks (no ``set_scan_backend``) ignore
    the request entirely, so the flag is inert for the Elman reference.

    The previous backend is restored even when installing the override
    (or the evaluated body) raises: ``set_scan_backend`` may validate
    and reject its argument mid-mutation, and an evaluation helper must
    never leak a half-switched backend into subsequent calls.
    """
    if backend is None or not hasattr(model, "set_scan_backend"):
        yield
        return
    original = model.scan_backend
    try:
        model.set_scan_backend(backend)
        yield
    finally:
        model.set_scan_backend(original)


@contextmanager
def _precision_scope(model: Module, precision: Optional[str]) -> Iterator[None]:
    """Temporarily evaluate ``model`` under a precision policy.

    ``None`` (the default) keeps the process-level policy and the
    model's current parameter dtypes untouched.  Otherwise the policy is
    activated for the scope and the parameters are cast to its compute
    dtype; the *original parameter arrays* are re-installed afterwards
    (restoration is by reference, so the pre-evaluation float64 values
    survive a float32 evaluation bit-exactly).
    """
    if precision is None:
        yield
        return
    params = list(model.parameters())
    saved = [p.data for p in params]
    with use_precision(precision) as policy:
        try:
            model.cast_(policy.compute)
            yield
        finally:
            for p, data in zip(params, saved):
                p.data = data
                p.grad = None


def _deterministic_result(model: Module, x: np.ndarray, y: np.ndarray) -> EvaluationResult:
    """Nominal (no-variation) evaluation: one ideal-sampler forward."""
    original = model.sampler
    try:
        model.set_sampler(ideal_sampler())
        acc = accuracy(model, x, y)
    finally:
        model.set_sampler(original)
    return EvaluationResult(mean=acc, std=0.0, samples=np.array([acc]))


def _tape_accuracy_loop(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    sampler: VariationSampler,
    streams: List[np.random.Generator],
) -> np.ndarray:
    """Sequential per-draw accuracies via the tape compiler.

    Draw 0 runs interpreted under a :class:`TapeCapture`; the compiled
    tape then replays the forward once per remaining child stream (the
    recorded variation providers re-draw from whichever stream is
    installed, so the samples are bit-equal to the interpreted loop).
    Any compile or replay failure falls back to interpreted forwards
    for the remaining draws.
    """
    xa = np.asarray(x, dtype=compute_dtype())
    ya = np.asarray(y)
    parent = sampler.rng
    accs: List[float] = []
    compiled: Optional[CompiledTape] = None
    try:
        sampler.rng = streams[0]
        capture = TapeCapture()
        capture.tag_input("x", xa)
        with no_grad(), tracing(capture):
            logits = model(xa)
        accs.append(float((np.argmax(logits.data, axis=1) == ya).mean()))
        try:
            compiled = CompiledTape(capture, logits)
        except TapeError:
            tape_counters.record_cache("fallback")
        else:
            tape_counters.record_cache("miss")
        for stream in streams[1:]:
            sampler.rng = stream
            out: Optional[np.ndarray] = None
            if compiled is not None:
                try:
                    out = compiled.replay_forward({"x": xa})
                except TapeError:
                    tape_counters.record_cache("fallback")
                    compiled = None
                else:
                    tape_counters.record_cache("hit")
            if out is None:
                with no_grad():
                    out = model(xa).data
            accs.append(float((np.argmax(out, axis=1) == ya).mean()))
    finally:
        sampler.rng = parent
    return np.array(accs)


def _mc_accuracy_samples(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    sampler: VariationSampler,
    mc_samples: int,
    vectorized: bool,
    graph_backend: Optional[str] = None,
) -> np.ndarray:
    """Per-draw accuracies under ``sampler`` (batched or sequential).

    Both paths consume the same per-draw child random streams, so the
    returned samples are identical; the batched path simply evaluates
    them in one ``(draws, batch, ...)`` forward.  ``graph_backend="tape"``
    accelerates the *sequential* loop by replaying a compiled trace per
    draw; the vectorized path already amortises graph overhead across
    draws and ignores the flag.
    """
    if vectorized:
        with Stopwatch() as sw, telemetry.span("evaluation"):
            with no_grad(), sampler.batched(mc_samples):
                logits = model(x)  # (draws, batch, classes)
        mc_counters.record_forward(sw.elapsed, mc_samples, backend="batched")
        mc_counters.record_precision(
            str(get_precision().compute), sw.elapsed, mc_samples
        )
        pred = np.argmax(logits.data, axis=-1)  # (draws, batch)
        return (pred == np.asarray(y)).mean(axis=1)
    streams = sampler.spawn_streams(mc_samples)
    if graph_backend == "tape":
        with Stopwatch() as sw, telemetry.span("evaluation"):
            samples = _tape_accuracy_loop(model, x, y, sampler, streams)
        mc_counters.record_forward(sw.elapsed, mc_samples, backend="sequential")
        mc_counters.record_precision(
            str(get_precision().compute), sw.elapsed, mc_samples
        )
        return samples
    parent = sampler.rng
    accs: List[float] = []
    with Stopwatch() as sw, telemetry.span("evaluation"):
        try:
            for stream in streams:
                sampler.rng = stream
                accs.append(accuracy(model, x, y))
        finally:
            sampler.rng = parent
    mc_counters.record_forward(sw.elapsed, mc_samples, backend="sequential")
    mc_counters.record_precision(str(get_precision().compute), sw.elapsed, mc_samples)
    return np.array(accs)


def _emit_evaluation(
    model: Module,
    result: EvaluationResult,
    *,
    variation: str,
    mc_samples: int,
    vectorized: bool,
    elapsed: float,
) -> EvaluationResult:
    """Emit one ``evaluation`` telemetry event describing ``result``.

    A no-op (single ``None``-check) when no run is active; returns
    ``result`` unchanged so callers can emit-and-return in one line.
    """
    telemetry.emit(
        "evaluation",
        model=type(model).__name__,
        variation=variation,
        mc_samples=mc_samples,
        backend="batched" if vectorized else "sequential",
        accuracy_mean=result.mean,
        accuracy_std=result.std,
        elapsed_s=elapsed,
    )
    return result


def _evaluate_with_sampler(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    sampler: VariationSampler,
    mc_samples: int,
    vectorized: bool,
    graph_backend: Optional[str] = None,
) -> EvaluationResult:
    """Install ``sampler``, collect MC accuracy samples, restore."""
    original = model.sampler
    try:
        model.set_sampler(sampler)
        samples = _mc_accuracy_samples(
            model, x, y, sampler, mc_samples, vectorized, graph_backend
        )
    finally:
        model.set_sampler(original)
    return EvaluationResult(
        mean=float(samples.mean()), std=float(samples.std()), samples=samples
    )


def evaluate_under_variation(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    delta: float = 0.10,
    mc_samples: int = 10,
    seed: int = 0,
    vectorized: bool = True,
    scan_backend: Optional[str] = None,
    precision: Optional[str] = None,
    graph_backend: Optional[str] = None,
) -> EvaluationResult:
    """Mean accuracy over ``mc_samples`` fabricated-instance draws.

    Each draw installs fresh ±``delta`` component variations (plus
    sampled μ and V₀) and classifies the whole test set — all draws in
    a single vectorized forward unless ``vectorized=False`` selects the
    sequential reference oracle.  The model's original sampler is
    restored afterwards.  Hardware-agnostic models (no ``set_sampler``)
    are evaluated once, deterministically, as is the explicit
    no-variation case (``mc_samples=0`` or ``delta=0``).

    ``scan_backend`` temporarily selects the filter-recurrence backend
    (``"fused"``/``"unfused"``) for the duration of the evaluation;
    ``None`` keeps the model's current backend.  ``precision``
    temporarily evaluates under a precision policy (casting parameters
    to its compute dtype and restoring the original arrays afterwards);
    ``None`` keeps the active policy and parameter dtypes.
    ``graph_backend="tape"`` replays a compiled trace per draw on the
    sequential (``vectorized=False``) path, falling back to interpreted
    forwards whenever the trace cannot be compiled; ``None`` and
    ``"interpreted"`` keep the plain per-draw loop.
    """
    _check_graph_backend(graph_backend)
    if not hasattr(model, "set_sampler"):
        acc = accuracy(model, x, y)
        return EvaluationResult(mean=acc, std=0.0, samples=np.array([acc]))
    if mc_samples < 0:
        raise ValueError("mc_samples must be >= 0")
    with Stopwatch() as sw, _precision_scope(model, precision), _scan_backend(
        model, scan_backend
    ):
        if mc_samples == 0 or delta == 0.0:
            # Deterministic fast path: no variation context is entered at
            # all — one nominal forward under the ideal sampler.
            result = _deterministic_result(model, x, y)
            draws = 0
        else:
            sampler = VariationSampler(
                model=UniformVariation(delta), rng=np.random.default_rng(seed)
            )
            result = _evaluate_with_sampler(
                model, x, y, sampler, mc_samples, vectorized, graph_backend
            )
            draws = mc_samples
    return _emit_evaluation(
        model,
        result,
        variation=f"uniform(delta={delta})" if draws else "none",
        mc_samples=draws,
        vectorized=vectorized,
        elapsed=sw.elapsed,
    )


def evaluate_under_model(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    variation: VariationModel,
    mc_samples: int = 10,
    seed: int = 0,
    vectorized: bool = True,
    scan_backend: Optional[str] = None,
    precision: Optional[str] = None,
    graph_backend: Optional[str] = None,
) -> EvaluationResult:
    """Mean accuracy under an arbitrary variation distribution.

    Generalises :func:`evaluate_under_variation` to any
    :class:`~repro.circuits.VariationModel` — e.g. the Gaussian-mixture
    device-level model of Rasheed et al. [24] — so robustness can be
    compared across printing-process assumptions.  ``mc_samples=0`` or
    a :class:`~repro.circuits.NoVariation` model short-circuit to the
    deterministic nominal evaluation.  ``scan_backend``, ``precision``
    and ``graph_backend`` temporarily select the filter-recurrence
    backend, the precision policy and the autograd graph backend, as in
    :func:`evaluate_under_variation`.
    """
    _check_graph_backend(graph_backend)
    if not hasattr(model, "set_sampler"):
        acc = accuracy(model, x, y)
        return EvaluationResult(mean=acc, std=0.0, samples=np.array([acc]))
    if mc_samples < 0:
        raise ValueError("mc_samples must be >= 0")
    with Stopwatch() as sw, _precision_scope(model, precision), _scan_backend(
        model, scan_backend
    ):
        if mc_samples == 0 or isinstance(variation, NoVariation):
            result = _deterministic_result(model, x, y)
            draws = 0
        else:
            sampler = VariationSampler(model=variation, rng=np.random.default_rng(seed))
            result = _evaluate_with_sampler(
                model, x, y, sampler, mc_samples, vectorized, graph_backend
            )
            draws = mc_samples
    return _emit_evaluation(
        model,
        result,
        variation=type(variation).__name__ if draws else "none",
        mc_samples=draws,
        vectorized=vectorized,
        elapsed=sw.elapsed,
    )


def select_top_k(
    scores: Sequence[float], k: int = 3
) -> List[int]:
    """Indices of the top-``k`` scores (descending), per the paper's
    "top three models for each dataset based on their accuracy" rule."""
    if k < 1:
        raise ValueError("k must be >= 1")
    order = np.argsort(scores)[::-1]
    return [int(i) for i in order[: min(k, len(order))]]
