"""Printed temporal processing block (pTPB) — Fig. 4.

One block chains, per layer of the network:

1. a bank of learnable low-pass filters (one per input rail, N_F equal
   to the layer's input count, Sec. IV-A3) — first-order for the
   baseline pTPNC [8], second-order (SO-LF) for ADAPT-pNC;
2. a printed resistor crossbar computing the weighted sum (Eq. 1);
3. a printed tanh-like activation circuit per output column.

The crossbar and activation are memoryless, so they are applied to the
time axis in one flattened batch; the filters carry the temporal state.
Each forward call draws a single set of variation factors ε / coupling
factors μ / initial voltages V₀ from the block's sampler — a printed
circuit instance is one fixed draw, constant over a sequence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..circuits import (
    DEFAULT_DT,
    DEFAULT_PDK,
    FirstOrderLearnableFilter,
    PrintedCrossbar,
    PrintedTanh,
    SecondOrderLearnableFilter,
    PrintedPDK,
    VariationSampler,
    ideal_sampler,
)
from ..nn.module import Module

__all__ = ["PrintedTemporalProcessingBlock"]


class PrintedTemporalProcessingBlock(Module):
    """Filter bank + crossbar + ptanh over a voltage sequence.

    Parameters
    ----------
    in_features, out_features:
        Input rails and output columns of the block.
    filter_order:
        1 for the baseline's first-order filters, 2 for SO-LF.
    dt:
        Temporal discretisation step of the sensor signal (seconds).
    sampler:
        Variation source shared by the filter bank, crossbar and
        activation; ideal when omitted.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        filter_order: int = 2,
        dt: float = DEFAULT_DT,
        sampler: Optional[VariationSampler] = None,
        pdk: PrintedPDK = DEFAULT_PDK,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if filter_order not in (1, 2):
            raise ValueError("filter_order must be 1 or 2")
        rng = rng if rng is not None else np.random.default_rng()
        sampler = sampler if sampler is not None else ideal_sampler()
        self.in_features = in_features
        self.out_features = out_features
        self.filter_order = filter_order

        filter_cls = (
            FirstOrderLearnableFilter if filter_order == 1 else SecondOrderLearnableFilter
        )
        self.filters = filter_cls(in_features, dt=dt, sampler=sampler, pdk=pdk, rng=rng)
        self.crossbar = PrintedCrossbar(
            in_features, out_features, sampler=sampler, pdk=pdk, rng=rng
        )
        self.activation = PrintedTanh(out_features, sampler=sampler, rng=rng)

    @property
    def sampler(self) -> VariationSampler:
        """The shared variation sampler."""
        return self.crossbar.sampler

    def set_sampler(self, sampler: VariationSampler) -> None:
        """Swap the variation source of every sub-circuit."""
        self.filters.sampler = sampler
        self.crossbar.sampler = sampler
        self.activation.sampler = sampler

    @property
    def scan_backend(self) -> str:
        """The filter bank's recurrence backend (``fused``/``unfused``)."""
        return self.filters.scan_backend

    def set_scan_backend(self, backend: str) -> None:
        """Select the filter bank's recurrence evaluation backend."""
        self.filters.set_scan_backend(backend)

    def forward(self, x: Tensor) -> Tensor:
        """Process a voltage sequence ``(batch, time, in_features)``.

        Returns ``(batch, time, out_features)``.  Inside a batched-draws
        sampler context the block evaluates every Monte-Carlo draw in
        one pass: the input may additionally carry a leading ``draws``
        axis (or be broadcast across draws), and the output is
        ``(draws, batch, time, out_features)``.
        """
        if x.ndim not in (3, 4) or x.shape[-1] != self.in_features:
            raise ValueError(f"expected (batch, time, {self.in_features}), got {x.shape}")
        steps = x.shape[-2]
        filtered = self.filters(x)
        if filtered.ndim == 4:
            # Batched Monte-Carlo: (draws, batch, time, n).  The
            # crossbar/activation are memoryless, so batch and time
            # flatten together while the draws axis stays separate —
            # each draw keeps its own ε set.
            draws, batch = filtered.shape[0], filtered.shape[1]
            flat = filtered.reshape(draws, batch * steps, self.in_features)
            summed = self.crossbar(flat)
            activated = self.activation(summed)
            return activated.reshape(draws, batch, steps, self.out_features)
        batch = filtered.shape[0]
        flat = filtered.reshape(batch * steps, self.in_features)
        summed = self.crossbar(flat)
        activated = self.activation(summed)
        return activated.reshape(batch, steps, self.out_features)

    def __repr__(self) -> str:
        return (
            f"PrintedTemporalProcessingBlock(in={self.in_features}, "
            f"out={self.out_features}, filter_order={self.filter_order})"
        )
