"""Tape-compiler throughput and equivalence measurement.

One shared harness behind ``benchmarks/bench_tape.py`` and the
``python -m repro tape-bench`` CLI subcommand.  Two measurements for
the autograd graph backends (:mod:`repro.autograd.tape`):

1. **Throughput** — an end-to-end ``Trainer.fit`` run per graph
   backend on identical data/seeds (the flagship workload: a
   deterministic float32 ``AdaptPNC`` fit, where graph-construction
   overhead dominates the numpy kernels), recording the best-of-
   ``repeats`` epoch wall-clock and the tape-over-interpreted speedup.
2. **Oracle / equivalence check** — a float64 variation-aware fit per
   backend: the interpreted path is the bit-equal reference, so the
   tape path must reproduce *exactly* identical train and validation
   losses at every epoch (delta 0.0, not merely small) with zero
   interpreter fallbacks.

The record is JSON-serialisable; ``equivalent`` summarises the oracle
check and drives the CLI exit code.
"""

from __future__ import annotations

import gc
import time
from dataclasses import replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..autograd.tape import tape_counters
from .. import telemetry
from .models import AdaptPNC
from .training import Trainer, TrainingConfig, TrainingHistory

__all__ = ["run_tape_benchmark", "format_tape_benchmark"]


def _make_data(
    batch: int, seq_len: int, n_classes: int, seed: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic smoke splits, generated once in float64 for all runs."""
    rng = np.random.default_rng(seed + 1)
    x = rng.uniform(-1.0, 1.0, size=(batch, seq_len))
    y = rng.integers(0, n_classes, size=batch)
    split = max(1, batch // 4)
    return x[split:], y[split:], x[:split], y[:split]


def _fit_once(
    graph_backend: str,
    precision: str,
    epochs: int,
    variation_aware: bool,
    mc_samples: int,
    data: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    n_classes: int,
    seed: int,
) -> Tuple[float, TrainingHistory]:
    """One fresh-model ``Trainer.fit`` run; returns (elapsed, history).

    Every run rebuilds the model from the same seed, so the two graph
    backends optimise bit-identical initial parameters over identical
    data and variation draws.
    """
    x_train, y_train, x_val, y_val = data
    model = AdaptPNC(n_classes, rng=np.random.default_rng(seed))
    config = replace(
        TrainingConfig.ci(),
        max_epochs=epochs,
        precision=precision,
        graph_backend=graph_backend,
        mc_samples=mc_samples,
    )
    trainer = Trainer(model, config, variation_aware=variation_aware, seed=seed)
    start = time.perf_counter()
    history = trainer.fit(x_train, y_train, x_val, y_val, checkpoint_every=0)
    return time.perf_counter() - start, history


def _bench_throughput(
    batch: int,
    seq_len: int,
    n_classes: int,
    epochs: int,
    repeats: int,
    seed: int,
    precision: str,
) -> Dict:
    """Best-of-``repeats`` ``Trainer.fit`` epoch wall-clock per backend.

    The workload is deterministic (ideal sampler, one draw): with no
    Monte-Carlo averaging the per-epoch numpy work is small and the
    interpreter's per-step graph construction dominates — the regime
    the tape compiler targets.  GC is disabled around the timed fits so
    collection pauses don't land on one backend by luck.
    """
    data = _make_data(batch, seq_len, n_classes, seed)
    per_backend: Dict[str, Dict] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for backend in ("interpreted", "tape"):
            # Warm-up run: first-touch numpy/allocator costs and (for
            # the tape backend) the one-off trace+compile.
            _fit_once(
                backend, precision, max(2, epochs // 10), False, 1,
                data, n_classes, seed,
            )
            best_epoch_s = float("inf")
            epochs_run = 0
            for _ in range(repeats):
                elapsed, history = _fit_once(
                    backend, precision, epochs, False, 1, data, n_classes, seed
                )
                epochs_run = history.epochs_run
                best_epoch_s = min(best_epoch_s, elapsed / max(epochs_run, 1))
            per_backend[backend] = {
                "epoch_s": best_epoch_s,
                "epochs_run": epochs_run,
            }
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "by_backend": per_backend,
        "speedup": per_backend["interpreted"]["epoch_s"]
        / max(per_backend["tape"]["epoch_s"], 1e-12),
    }


def _oracle_check(
    batch: int,
    seq_len: int,
    n_classes: int,
    epochs: int,
    mc_samples: int,
    seed: int,
) -> Dict:
    """Bit-equality of tape vs interpreted at float64 (variation-aware).

    The interpreted float64 path is the engine's oracle; a compiled
    tape replays the same numpy call sequence over arenas, so every
    train/val loss of a variation-aware Monte-Carlo fit must match to
    the last bit.  Any nonzero delta means the compiler changed the
    arithmetic — the hard failure mode this benchmark exists to catch.
    """
    data = _make_data(batch, seq_len, n_classes, seed)
    fallbacks_before = tape_counters.fallbacks
    histories: Dict[str, TrainingHistory] = {}
    for backend in ("interpreted", "tape"):
        _, histories[backend] = _fit_once(
            backend, "float64", epochs, True, mc_samples, data, n_classes, seed
        )
    ref, tape = histories["interpreted"], histories["tape"]
    train_delta = max(
        (abs(a - b) for a, b in zip(ref.train_loss, tape.train_loss)),
        default=float("inf"),
    )
    val_delta = max(
        (abs(a - b) for a, b in zip(ref.val_loss, tape.val_loss)),
        default=float("inf"),
    )
    fallbacks = tape_counters.fallbacks - fallbacks_before
    return {
        "epochs": min(ref.epochs_run, tape.epochs_run),
        "max_abs_train_loss_delta": train_delta,
        "max_abs_val_loss_delta": val_delta,
        "fallbacks": int(fallbacks),
        "bit_equal": bool(
            ref.epochs_run == tape.epochs_run
            and train_delta == 0.0
            and val_delta == 0.0
            and fallbacks == 0
        ),
    }


def run_tape_benchmark(
    batch: int = 16,
    seq_len: int = 8,
    n_classes: int = 3,
    epochs: int = 150,
    repeats: int = 5,
    seed: int = 0,
    precision: str = "float32",
    oracle_epochs: int = 10,
    oracle_mc_samples: int = 2,
) -> Dict:
    """Measure tape-over-interpreted throughput and verify equivalence.

    Returns a record with a ``tape_compiler`` section consumed by
    :func:`repro.report.render_report`: per-backend ``Trainer.fit``
    epoch wall-clock and speedup on the deterministic flagship
    workload, the float64 variation-aware oracle deltas (bit-equality
    required), the post-run :data:`~repro.autograd.tape.tape_counters`
    snapshot, and an ``equivalent`` verdict.
    """
    tape_counters.reset()
    throughput = _bench_throughput(
        batch, seq_len, n_classes, epochs, repeats, seed, precision
    )
    oracle = _oracle_check(
        batch, seq_len, n_classes, oracle_epochs, oracle_mc_samples, seed
    )
    per_backend = throughput["by_backend"]
    record: Dict = {
        "tape_compiler": {
            "model": "AdaptPNC",
            "batch": int(batch),
            "seq_len": int(seq_len),
            "epochs": int(epochs),
            "repeats": int(repeats),
            "scan_backend": "fused",
            "precision": precision,
            "interpreted_epoch_s": per_backend["interpreted"]["epoch_s"],
            "tape_epoch_s": per_backend["tape"]["epoch_s"],
            "speedup": throughput["speedup"],
            "oracle": oracle,
            "oracle_epochs": oracle["epochs"],
            "max_abs_loss_delta": max(
                oracle["max_abs_train_loss_delta"],
                oracle["max_abs_val_loss_delta"],
            ),
            "equivalent": oracle["bit_equal"],
            "counters": tape_counters.snapshot(),
        }
    }
    telemetry.emit(
        "gauges", source="tape-bench", gauges=telemetry.gauges.snapshot()
    )
    return record


def format_tape_benchmark(record: Dict) -> str:
    """ASCII summary of a :func:`run_tape_benchmark` record."""
    from ..utils.tables import render_table

    tape = record["tape_compiler"]
    rows = [
        ["interpreted", f"{tape['interpreted_epoch_s'] * 1e3:.2f} ms"],
        ["tape", f"{tape['tape_epoch_s'] * 1e3:.2f} ms"],
    ]
    oracle = tape["oracle"]
    verdict = "bit-equal" if oracle["bit_equal"] else "DIVERGED"
    counters = tape["counters"]
    lines = [
        f"Trainer.fit ({tape['model']}, batch={tape['batch']}, "
        f"seq_len={tape['seq_len']}, {tape['epochs']} epochs, "
        f"scan={tape['scan_backend']}, precision={tape['precision']}, "
        f"deterministic):",
        render_table(["graph backend", "epoch"], rows),
        f"speedup: {tape['speedup']:.2f}x (tape over interpreted)",
        f"float64 VA oracle over {oracle['epochs']} epochs: "
        f"max |Δtrain| = {oracle['max_abs_train_loss_delta']:.1e}, "
        f"max |Δval| = {oracle['max_abs_val_loss_delta']:.1e}, "
        f"fallbacks = {oracle['fallbacks']} — {verdict}",
        f"compiler: {counters['traces']:.0f} traces / "
        f"{counters['traced_ops']:.0f} ops ({counters['fused_ops']:.0f} fused, "
        f"{counters['dead_grad_skips']:.0f} dead-grad skips); "
        f"cache {counters['cache_hits']:.0f} hits / "
        f"{counters['cache_misses']:.0f} misses; "
        f"{counters['replays']:.0f} replays",
        "equivalence: OK" if tape["equivalent"] else "equivalence: FAILED",
    ]
    return "\n".join(lines)
