"""Architecture search for ADAPT-pNCs (the paper's stated future work).

"Future work may include new architectural search methodologies for
ADAPT-pNCs to further address sensor variations" (Sec. V).  This module
implements that direction with the in-repo HPO machinery: a search
space over hidden width, filter order and logit scale, scored by
*robust* validation accuracy (accuracy under component variation —
optimising for the deployed metric, not the clean one), scheduled with
successive halving so cheap low-epoch screening prunes the space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..augment import AugmentationConfig, default_config
from ..data import DatasetSplits, load_dataset
from ..tuning import SearchSpace, choice, successive_halving, uniform
from .evaluation import evaluate_under_variation
from .models import AdaptPNC
from .training import Trainer, TrainingConfig

__all__ = ["ArchitectureResult", "architecture_space", "search_architecture"]


@dataclass
class ArchitectureResult:
    """One evaluated architecture."""

    hidden_size: int
    filter_order: int
    logit_scale: float
    robust_accuracy: float
    budget: int

    def __repr__(self) -> str:
        return (
            f"ArchitectureResult(hidden={self.hidden_size}, "
            f"order={self.filter_order}, scale={self.logit_scale:.1f}, "
            f"robust_acc={self.robust_accuracy:.3f})"
        )


def architecture_space(
    hidden_sizes: Sequence[int] = (3, 4, 5, 6, 8),
    filter_orders: Sequence[int] = (1, 2),
) -> SearchSpace:
    """The default ADAPT-pNC architecture space."""
    return SearchSpace(
        {
            "hidden_size": choice(list(hidden_sizes)),
            "filter_order": choice(list(filter_orders)),
            "logit_scale": uniform(2.0, 8.0),
        }
    )


def search_architecture(
    dataset: DatasetSplits | str,
    n_trials: int = 8,
    budgets: Sequence[int] = (1, 3),
    base_epochs: int = 15,
    space: Optional[SearchSpace] = None,
    training: Optional[TrainingConfig] = None,
    augmentation: Optional[AugmentationConfig] = None,
    eval_delta: float = 0.10,
    eval_mc: int = 5,
    seed: int = 0,
) -> List[ArchitectureResult]:
    """Search ADAPT-pNC architectures on one dataset.

    Each trial trains a candidate for ``budget * base_epochs`` epochs
    with variation-aware + augmented training, then scores accuracy on
    the validation set under ±``eval_delta`` component variation.
    Returns the final round's candidates, best first.
    """
    if isinstance(dataset, str):
        name = dataset
        dataset = load_dataset(name, n_samples=90, seed=seed)
        augmentation = augmentation if augmentation is not None else default_config(name)
    if augmentation is None:
        augmentation = AugmentationConfig()
    space = space if space is not None else architecture_space()
    base_training = training if training is not None else TrainingConfig.ci()

    def objective(config: Dict[str, float], budget: int) -> float:
        model = AdaptPNC(
            dataset.info.n_classes,
            hidden_size=int(config["hidden_size"]),
            rng=np.random.default_rng(seed),
        )
        # filter order is structural: rebuild blocks when order is 1
        if int(config["filter_order"]) == 1:
            from .models import PrintedTemporalClassifier

            model = PrintedTemporalClassifier(
                dataset.info.n_classes,
                int(config["hidden_size"]),
                filter_order=1,
                rng=np.random.default_rng(seed),
            )
        model.logit_scale = float(config["logit_scale"])
        trainer = Trainer(
            model,
            replace(base_training, max_epochs=base_epochs * budget),
            variation_aware=True,
            augmentation=augmentation,
            seed=seed,
        )
        trainer.fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
        return evaluate_under_variation(
            model,
            dataset.x_val,
            dataset.y_val,
            delta=eval_delta,
            mc_samples=eval_mc,
            seed=seed,
        ).mean

    trials = successive_halving(
        objective, space, n_trials=n_trials, budgets=tuple(budgets), seed=seed
    )
    return [
        ArchitectureResult(
            hidden_size=int(t.config["hidden_size"]),
            filter_order=int(t.config["filter_order"]),
            logit_scale=float(t.config["logit_scale"]),
            robust_accuracy=t.score,
            budget=t.budget,
        )
        for t in trials
    ]
