"""Streaming (sample-by-sample) inference.

A deployed printed circuit never sees a batched sequence: the sensor
voltage arrives one sample per Δt and the filter capacitors carry the
state.  :class:`StreamingClassifier` mirrors that operating mode in the
differentiable model — push one sample, read the instantaneous output
voltages — and is guaranteed (by test) to match the batched forward
pass exactly.

Useful for latency studies ("how many samples until the decision
stabilises?") and as the software twin of the compiled netlist.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import Tensor, no_grad
from ..circuits.filters import FirstOrderLearnableFilter, SecondOrderLearnableFilter
from .models import PrintedTemporalClassifier

__all__ = ["StreamingClassifier"]


class _StreamingStage:
    """One RC stage's recurrence state for a single stream."""

    def __init__(self, a: np.ndarray, b: np.ndarray) -> None:
        self.a = a
        self.b = b
        self.v = np.zeros_like(a)

    def push(self, x: np.ndarray) -> np.ndarray:
        self.v = self.a * self.v + self.b * x
        return self.v


class _StreamingFilterBank:
    """Streaming counterpart of a learnable filter bank (nominal values)."""

    def __init__(self, filters) -> None:
        dt = filters.dt
        if isinstance(filters, FirstOrderLearnableFilter):
            stages = [filters.stage]
        elif isinstance(filters, SecondOrderLearnableFilter):
            stages = [filters.stage1, filters.stage2]
        else:
            raise TypeError(f"unsupported filter bank {type(filters).__name__}")
        self.stages: List[_StreamingStage] = []
        for stage in stages:
            a, b = stage.nominal_coefficients(dt)
            self.stages.append(_StreamingStage(a, b))

    def push(self, x: np.ndarray) -> np.ndarray:
        for stage in self.stages:
            x = stage.push(x)
        return x

    def reset(self) -> None:
        for stage in self.stages:
            stage.v = np.zeros_like(stage.v)


class StreamingClassifier:
    """Stateful single-stream inference over a trained printed model.

    The model's variation sampler is bypassed: streaming uses the
    nominal (ideal) component values, i.e. one fixed fabricated
    instance at its design point.

    Example
    -------
    >>> stream = StreamingClassifier(trained_model)
    >>> for sample in sensor_series:
    ...     logits = stream.push(sample)
    >>> prediction = int(np.argmax(logits))
    """

    def __init__(self, model: PrintedTemporalClassifier) -> None:
        self.model = model
        self._banks = [_StreamingFilterBank(block.filters) for block in model.blocks]
        self._steps = 0

    @property
    def steps_seen(self) -> int:
        """Samples consumed since the last reset."""
        return self._steps

    def reset(self) -> None:
        """Discharge all filter state (power-cycle the circuit)."""
        for bank in self._banks:
            bank.reset()
        self._steps = 0

    def push(self, sample) -> np.ndarray:
        """Consume one sensor sample (scalar, or a vector of
        ``in_channels`` values for multivariate models); returns the
        current logits."""
        channels = getattr(self.model, "in_channels", 1)
        x = np.atleast_1d(np.asarray(sample, dtype=np.float64))
        if x.shape != (channels,):
            raise ValueError(f"push() takes {channels} sample value(s), got shape {x.shape}")
        with no_grad():
            for bank, block in zip(self._banks, self.model.blocks):
                filtered = bank.push(x)
                summed = block.crossbar(Tensor(filtered.reshape(1, -1)))
                x = block.activation(summed).data[0]
        self._steps += 1
        return x * self.model.logit_scale

    def run(self, series: np.ndarray) -> np.ndarray:
        """Stream a whole series; returns logits at every step."""
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 1:
            raise ValueError("series must be 1-D")
        out = np.zeros((series.size, self.model.n_classes))
        for k, sample in enumerate(series):
            out[k] = self.push(float(sample))
        return out

    def decision_latency(self, series: np.ndarray) -> int:
        """Earliest step from which the predicted class never changes.

        0 means the very first sample already settles the decision;
        ``len(series) - 1`` means the prediction flipped on the last
        sample.  Resets the stream state first.
        """
        self.reset()
        logits = self.run(series)
        predictions = np.argmax(logits, axis=1)
        final = predictions[-1]
        stable_from = predictions.size - 1
        for k in range(predictions.size - 1, -1, -1):
            if predictions[k] != final:
                break
            stable_from = k
        return int(stable_from)
