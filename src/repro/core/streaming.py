"""Streaming (stateful, chunked) inference over unbounded sensor streams.

A deployed printed circuit never sees a batched sequence: the sensor
voltage arrives one sample per Δt and the filter capacitors carry the
state.  This module mirrors that operating mode in software:

* :class:`StreamingSession` — the streaming engine.  It executes a
  frozen :class:`~repro.compile.ForwardPlan` (compiled on the fly from
  a live model if needed) one time step at a time, carrying every RC
  stage's ``v_{k-1}`` across :meth:`~StreamingSession.process` calls,
  so an unbounded stream can be consumed in arbitrary chunk sizes.
* :class:`StreamingClassifier` — the sample-by-sample façade kept from
  the original demo (``push``/``run``/``decision_latency``), now a thin
  wrapper over a :class:`StreamingSession` so it shares the *single*
  coefficient-resolution path with ``compile_plan``
  (:func:`repro.circuits.filter_stages` +
  :meth:`~repro.circuits.filters._RCStage.nominal_coefficients`).
* :func:`evaluate_streaming` — the online evaluation harness: stream a
  :class:`~repro.data.SensorStream` scenario through a session, emit
  ``stream.*`` telemetry and produce accuracy-over-time /
  accuracy-around-changepoint curves (rendered by the ``## Streaming``
  report section and the ``python -m repro stream-eval`` CLI).

Split-invariance contract
-------------------------
For **any** partition of a stream into chunks — including single-sample
chunks and one giant chunk — the concatenated per-step logits are
**bit-equal** to processing the whole stream in one call.  This holds
by construction: every arithmetic operation the session performs has a
*fixed per-step shape* regardless of how the stream was chunked.  The
RC recurrence is element-wise (trivially chunk-invariant), and the
crossbar GEMM always runs as ``(1, in) @ (in, out)`` — one time step at
a time.  A whole-chunk GEMM would *not* be invariant: BLAS selects
different kernels (hence different accumulation orders) for different
row counts, so ``X[lo:hi] @ W`` differs from ``(X @ W)[lo:hi]`` in the
last ulp.  For the same reason the session agrees with the batched
``model(x)`` / ``plan.forward(x)`` logits to floating-point
accumulation tolerance (≤1e-12 in float64, exercised by test) rather
than bitwise; the stateful recurrence trajectory itself *is* bitwise
identical (see ``tests/core/test_split_invariance.py``).

The model's variation sampler is bypassed: streaming executes the
nominal (ideal) instance frozen into the plan, i.e. one fabricated
circuit at its design point.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Tuple

import numpy as np

from ..telemetry import emit as telemetry_emit
from .models import PrintedTemporalClassifier

__all__ = [
    "StreamingClassifier",
    "StreamingSession",
    "StreamingEvalResult",
    "evaluate_streaming",
]


class StreamingSession:
    """Stateful chunked inference over a frozen forward plan.

    Parameters
    ----------
    source:
        A :class:`~repro.compile.ForwardPlan` or a live
        :class:`~repro.core.PrintedTemporalClassifier` (compiled with
        :func:`~repro.compile.compile_plan` on construction, so the
        session and the serving tier resolve recurrence coefficients
        through the same path).
    precision:
        Optional precision policy for on-the-fly compilation; ignored
        when ``source`` is already a plan.

    Example
    -------
    >>> session = StreamingSession(trained_model)
    >>> for chunk in transport:           # any chunk sizes, any cuts
    ...     logits = session.process(chunk)   # (steps, n_classes)
    >>> prediction = session.predict()
    """

    def __init__(self, source, precision: Optional[str] = None) -> None:
        from ..compile import ForwardPlan, compile_plan

        if isinstance(source, ForwardPlan):
            self.plan = source
        elif isinstance(source, PrintedTemporalClassifier):
            self.plan = compile_plan(source, precision=precision)
        else:
            raise TypeError(
                f"StreamingSession expects a ForwardPlan or a "
                f"PrintedTemporalClassifier, got {type(source).__name__}"
            )
        self._state: List[List[np.ndarray]] = []
        self._steps = 0
        self._last_logits: Optional[np.ndarray] = None
        self.reset()

    # -- state ----------------------------------------------------------

    @property
    def steps_seen(self) -> int:
        """Samples consumed since the last reset."""
        return self._steps

    @property
    def last_logits(self) -> Optional[np.ndarray]:
        """Logits after the most recent step (``None`` before any)."""
        return self._last_logits

    def reset(self) -> None:
        """Discharge all filter state (power-cycle the circuit)."""
        dtype = self.plan.dtype
        self._state = [
            [np.zeros(layer.in_features, dtype=dtype) for _ in layer.stages]
            for layer in self.plan.layers
        ]
        self._steps = 0
        self._last_logits = None

    # -- execution ------------------------------------------------------

    def process(self, chunk) -> np.ndarray:
        """Consume one chunk ``(time,)`` or ``(time, in_channels)``.

        Returns the per-step logits ``(time, n_classes)`` and carries
        the filter state forward, so consecutive calls are bit-equal to
        one call over the concatenated chunk (see module docstring).
        """
        plan = self.plan
        x = plan.coerce_series(chunk)
        steps = x.shape[0]
        out = np.empty((steps, plan.n_classes), dtype=plan.dtype)
        layers = plan.layers
        state = self._state
        for k in range(steps):
            h = x[k]
            for li, layer in enumerate(layers):
                for si, (a, b) in enumerate(layer.stages):
                    v = state[li][si]
                    # Same per-element arithmetic as the batched scan
                    # kernel (FilterScan / ForwardPlan._scan).
                    v = a * v + b * h
                    state[li][si] = v
                    h = v
                # Fixed (1, in) @ (in, out) GEMM on the plan's collapsed
                # weights — shape-independent of the chunking.
                mm = h.reshape(1, -1) @ layer.weights.swapaxes(-1, -2)
                mm += layer.bias
                e1, e2, e3, e4 = layer.eta
                h = (e1 + e2 * np.tanh((mm - e3) * e4))[0]
            out[k] = h
        out *= plan.logit_scale
        self._steps += steps
        self._last_logits = out[-1].copy()
        return out

    def predict(self) -> int:
        """Predicted class after the samples consumed so far."""
        if self._last_logits is None:
            raise ValueError("no samples processed yet")
        return int(np.argmax(self._last_logits))

    def __repr__(self) -> str:
        return (
            f"StreamingSession({self.plan.model_class}, "
            f"steps_seen={self._steps}, dtype={self.plan.dtype})"
        )


class StreamingClassifier:
    """Stateful single-stream inference over a trained printed model.

    A sample-by-sample façade over :class:`StreamingSession`: the model
    is frozen through :func:`~repro.compile.compile_plan`, so streaming
    and the serving plan share one coefficient-resolution path and can
    never drift apart (pinned by regression test).

    Example
    -------
    >>> stream = StreamingClassifier(trained_model)
    >>> for sample in sensor_series:
    ...     logits = stream.push(sample)
    >>> prediction = int(np.argmax(logits))
    """

    def __init__(
        self, model: PrintedTemporalClassifier, precision: Optional[str] = None
    ) -> None:
        self.model = model
        self.session = StreamingSession(model, precision=precision)

    @property
    def steps_seen(self) -> int:
        """Samples consumed since the last reset."""
        return self.session.steps_seen

    def reset(self) -> None:
        """Discharge all filter state (power-cycle the circuit)."""
        self.session.reset()

    def push(self, sample) -> np.ndarray:
        """Consume one sensor sample (scalar, or a vector of
        ``in_channels`` values for multivariate models); returns the
        current logits."""
        channels = getattr(self.model, "in_channels", 1)
        x = np.atleast_1d(np.asarray(sample, dtype=np.float64))
        if x.shape != (channels,):
            raise ValueError(f"push() takes {channels} sample value(s), got shape {x.shape}")
        return self.session.process(x.reshape(1, channels))[0]

    def run(self, series: np.ndarray) -> np.ndarray:
        """Stream a whole series; returns logits at every step."""
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 1:
            raise ValueError("series must be 1-D")
        return self.session.process(series)

    def decision_latency(self, series: np.ndarray) -> int:
        """Earliest step from which the predicted class never changes.

        0 means the very first sample already settles the decision;
        ``len(series) - 1`` means the prediction flipped on the last
        sample.  Resets the stream state first.
        """
        self.reset()
        logits = self.run(series)
        predictions = np.argmax(logits, axis=1)
        final = predictions[-1]
        stable_from = predictions.size - 1
        for k in range(predictions.size - 1, -1, -1):
            if predictions[k] != final:
                break
            stable_from = k
        return int(stable_from)


# -- online evaluation harness ---------------------------------------------


def _rolling_accuracy(correct: np.ndarray, window: int) -> np.ndarray:
    """Causal rolling mean of ``correct`` over the last ``window`` steps
    (shorter prefix windows during warm-up)."""
    csum = np.concatenate([[0.0], np.cumsum(correct, dtype=np.float64)])
    steps = correct.size
    idx = np.arange(1, steps + 1)
    lo = np.maximum(idx - window, 0)
    return (csum[idx] - csum[lo]) / (idx - lo)


@dataclasses.dataclass
class StreamingEvalResult:
    """Everything :func:`evaluate_streaming` measured on one scenario."""

    scenario: str
    dataset: str
    model: str
    steps: int
    chunk_size: int
    accuracy: float
    predictions: np.ndarray
    correct: np.ndarray
    #: Causal rolling accuracy per step (window :attr:`curve_window`).
    accuracy_curve: np.ndarray
    curve_window: int
    changepoints: Tuple[int, ...]
    #: Mean correctness aligned at the changepoints over
    #: ``[-halo_pre, +halo_post)`` (``None`` without a complete halo).
    changepoint_curve: Optional[np.ndarray]
    changepoint_halo: Tuple[int, int]
    segment_accuracy: Tuple[float, ...]
    #: Mean accuracy in the halo before / after the changepoints.
    pre_change_accuracy: Optional[float]
    post_change_accuracy: Optional[float]
    #: Accuracy on burst-corrupted vs clean steps (``None`` without bursts).
    burst_accuracy: Optional[float]
    clean_accuracy: Optional[float]
    elapsed_s: float

    def to_record(self) -> dict:
        """JSON-serialisable record (consumed by ``repro.report``)."""
        return {
            "scenario": self.scenario,
            "dataset": self.dataset,
            "model": self.model,
            "steps": int(self.steps),
            "chunk_size": int(self.chunk_size),
            "accuracy": float(self.accuracy),
            "accuracy_curve": [float(v) for v in self.accuracy_curve],
            "curve_window": int(self.curve_window),
            "changepoints": [int(c) for c in self.changepoints],
            "changepoint_curve": (
                None
                if self.changepoint_curve is None
                else [float(v) for v in self.changepoint_curve]
            ),
            "changepoint_halo": [int(h) for h in self.changepoint_halo],
            "segment_accuracy": [float(v) for v in self.segment_accuracy],
            "pre_change_accuracy": self.pre_change_accuracy,
            "post_change_accuracy": self.post_change_accuracy,
            "burst_accuracy": self.burst_accuracy,
            "clean_accuracy": self.clean_accuracy,
            "elapsed_s": float(self.elapsed_s),
        }


def evaluate_streaming(
    source,
    stream,
    chunk_size: int = 16,
    curve_window: int = 64,
    changepoint_halo: Tuple[int, int] = (64, 64),
    precision: Optional[str] = None,
) -> StreamingEvalResult:
    """Online evaluation of one model over one sensor-stream scenario.

    Streams ``stream.x`` through a fresh :class:`StreamingSession` in
    ``chunk_size`` pieces, scoring the per-step prediction against the
    per-step label.  Emits ``stream.start`` / ``stream.chunk`` /
    ``stream.end`` telemetry into the active
    :class:`repro.telemetry.Run` (no-op without one).

    Parameters
    ----------
    source:
        A trained model or an already-compiled plan.
    stream:
        A :class:`repro.data.SensorStream` (or anything with ``x``,
        ``labels``, ``changepoints``, ``burst_mask``, ``name``,
        ``dataset`` attributes).
    chunk_size:
        Steps per :meth:`~StreamingSession.process` call (the transport
        chunking; the result is chunking-invariant, the telemetry
        granularity is not).
    curve_window:
        Rolling window of the accuracy-over-time curve.
    changepoint_halo:
        ``(pre, post)`` steps of the accuracy-around-changepoint curve.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if curve_window < 1:
        raise ValueError("curve_window must be >= 1")
    session = StreamingSession(source, precision=precision)
    x = np.asarray(stream.x, dtype=np.float64)
    labels = np.asarray(stream.labels)
    steps = x.shape[0]
    if labels.shape[0] != steps:
        raise ValueError(
            f"stream has {steps} steps but {labels.shape[0]} labels"
        )
    changepoints = tuple(int(c) for c in stream.changepoints)
    telemetry_emit(
        "stream.start",
        scenario=stream.name,
        dataset=stream.dataset,
        model=session.plan.model_class,
        steps=steps,
        chunk_size=chunk_size,
        n_changepoints=len(changepoints),
    )
    predictions = np.empty(steps, dtype=np.int64)
    t_start = time.perf_counter()
    for lo in range(0, steps, chunk_size):
        hi = min(lo + chunk_size, steps)
        t0 = time.perf_counter()
        logits = session.process(x[lo:hi])
        chunk_pred = np.argmax(logits, axis=-1)
        predictions[lo:hi] = chunk_pred
        telemetry_emit(
            "stream.chunk",
            scenario=stream.name,
            lo=lo,
            hi=hi,
            accuracy=float(np.mean(chunk_pred == labels[lo:hi])),
            latency_ms=(time.perf_counter() - t0) * 1e3,
        )
    elapsed = time.perf_counter() - t_start

    correct = (predictions == labels).astype(np.float64)
    curve = _rolling_accuracy(correct, curve_window)

    pre, post = changepoint_halo
    halos = [
        correct[cp - pre : cp + post]
        for cp in changepoints
        if cp - pre >= 0 and cp + post <= steps
    ]
    cp_curve = np.mean(halos, axis=0) if halos else None
    pre_acc = float(np.mean(cp_curve[:pre])) if cp_curve is not None else None
    post_acc = float(np.mean(cp_curve[pre:])) if cp_curve is not None else None

    edges = [0] + list(changepoints) + [steps]
    segment_accuracy = tuple(
        float(np.mean(correct[lo:hi])) for lo, hi in zip(edges[:-1], edges[1:])
    )

    burst_mask = np.asarray(stream.burst_mask, dtype=bool)
    if burst_mask.any():
        burst_acc = float(np.mean(correct[burst_mask]))
        clean_acc = float(np.mean(correct[~burst_mask]))
    else:
        burst_acc = clean_acc = None

    result = StreamingEvalResult(
        scenario=stream.name,
        dataset=stream.dataset,
        model=session.plan.model_class,
        steps=steps,
        chunk_size=chunk_size,
        accuracy=float(np.mean(correct)),
        predictions=predictions,
        correct=correct.astype(bool),
        accuracy_curve=curve,
        curve_window=curve_window,
        changepoints=changepoints,
        changepoint_curve=cp_curve,
        changepoint_halo=(int(pre), int(post)),
        segment_accuracy=segment_accuracy,
        pre_change_accuracy=pre_acc,
        post_change_accuracy=post_acc,
        burst_accuracy=burst_acc,
        clean_accuracy=clean_acc,
        elapsed_s=elapsed,
    )
    telemetry_emit(
        "stream.end",
        scenario=stream.name,
        dataset=stream.dataset,
        model=result.model,
        steps=steps,
        accuracy=result.accuracy,
        segment_accuracy=list(result.segment_accuracy),
        pre_change_accuracy=pre_acc,
        post_change_accuracy=post_acc,
        burst_accuracy=burst_acc,
        clean_accuracy=clean_acc,
        elapsed_s=elapsed,
    )
    return result
