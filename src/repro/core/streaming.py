"""Streaming (stateful, chunked) inference over unbounded sensor streams.

A deployed printed circuit never sees a batched sequence: the sensor
voltage arrives one sample per Δt and the filter capacitors carry the
state.  This module mirrors that operating mode in software:

* :class:`StreamingSession` — the single-stream engine.  It executes a
  frozen :class:`~repro.compile.ForwardPlan` (compiled on the fly from
  a live model if needed) one time step at a time, carrying every RC
  stage's ``v_{k-1}`` across :meth:`~StreamingSession.process` calls,
  so an unbounded stream can be consumed in arbitrary chunk sizes.
  :meth:`~StreamingSession.state_dict` / ``save_state`` /
  ``load_state`` snapshot the carried state to an npz for bit-equal
  resume after a restart.
* :class:`MultiStreamSession` — the batched fleet engine.  The filter
  state of up to ``capacity`` concurrent streams lives as one
  ``(streams, features)`` matrix per RC stage, and one call advances
  every active stream per layer per step.  Streams join/leave/reset
  mid-flight against a row free-list; ragged chunk lengths are padded
  and masked.  Each row is **bit-equal** to a lone
  :class:`StreamingSession` fed the same chunks, whatever the
  interleaving (see the contract below).
* :class:`StreamingClassifier` — the sample-by-sample façade kept from
  the original demo (``push``/``run``/``decision_latency``), now a thin
  wrapper over a :class:`StreamingSession` so it shares the *single*
  coefficient-resolution path with ``compile_plan``
  (:func:`repro.circuits.filter_stages` +
  :meth:`~repro.circuits.filters._RCStage.nominal_coefficients`).
* :func:`evaluate_streaming` — the online evaluation harness: stream a
  :class:`~repro.data.SensorStream` scenario through a session, emit
  ``stream.*`` telemetry and produce accuracy-over-time /
  accuracy-around-changepoint curves (rendered by the ``## Streaming``
  report section and the ``python -m repro stream-eval`` CLI).

Split- and fleet-invariance contract
------------------------------------
For **any** partition of a stream into chunks — including single-sample
chunks and one giant chunk — the concatenated per-step logits are
**bit-equal** to processing the whole stream in one call; and a stream
stepped inside a :class:`MultiStreamSession` fleet is bit-equal to the
same stream stepped alone, whatever the other rows are doing.  Both
hold by construction: every step runs through the shared row-stable
kernels (:func:`~repro.compile.plan.row_stage`,
:func:`~repro.compile.plan.row_affine`,
:func:`~repro.compile.plan.row_ptanh`), whose per-row results are
independent of how many rows share the matrix — elementwise ufuncs and
``einsum``'s fixed-order sum-of-products loop, never a BLAS GEMM
(whose kernel choice, hence accumulation order, depends on the row
count).  The session agrees with the batched ``model(x)`` /
``plan.forward(x)`` logits to floating-point accumulation tolerance
(≤1e-12 in float64, exercised by test) rather than bitwise; the
stateful recurrence trajectory itself *is* bitwise reproducible (see
``tests/core/test_split_invariance.py`` and
``tests/core/test_multistream.py``).

The model's variation sampler is bypassed: streaming executes the
nominal (ideal) instance frozen into the plan, i.e. one fabricated
circuit at its design point.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..telemetry import emit as telemetry_emit
from .models import PrintedTemporalClassifier

__all__ = [
    "MultiStreamSession",
    "StreamingClassifier",
    "StreamingSession",
    "StreamingEvalResult",
    "evaluate_streaming",
]


def _resolve_plan(source, precision: Optional[str], owner: str):
    """Accept a ForwardPlan or a live model; compile the latter."""
    from ..compile import ForwardPlan, compile_plan

    if isinstance(source, ForwardPlan):
        return source
    if isinstance(source, PrintedTemporalClassifier):
        return compile_plan(source, precision=precision)
    raise TypeError(
        f"{owner} expects a ForwardPlan or a "
        f"PrintedTemporalClassifier, got {type(source).__name__}"
    )


class StreamingSession:
    """Stateful chunked inference over a frozen forward plan.

    Parameters
    ----------
    source:
        A :class:`~repro.compile.ForwardPlan` or a live
        :class:`~repro.core.PrintedTemporalClassifier` (compiled with
        :func:`~repro.compile.compile_plan` on construction, so the
        session and the serving tier resolve recurrence coefficients
        through the same path).
    precision:
        Optional precision policy for on-the-fly compilation; ignored
        when ``source`` is already a plan.

    Example
    -------
    >>> session = StreamingSession(trained_model)
    >>> for chunk in transport:           # any chunk sizes, any cuts
    ...     logits = session.process(chunk)   # (steps, n_classes)
    >>> prediction = session.predict()
    """

    #: npz snapshot format tag (bumped on layout changes).
    STATE_FORMAT = "repro-streaming-state-v1"

    def __init__(self, source, precision: Optional[str] = None) -> None:
        self.plan = _resolve_plan(source, precision, "StreamingSession")
        self._state: List[List[np.ndarray]] = []
        self._scratch = self.plan.stream_scratch(1)
        self._steps = 0
        self._last_logits: Optional[np.ndarray] = None
        self.reset()

    # -- state ----------------------------------------------------------

    @property
    def steps_seen(self) -> int:
        """Samples consumed since the last reset."""
        return self._steps

    @property
    def last_logits(self) -> Optional[np.ndarray]:
        """Logits after the most recent step (``None`` before any)."""
        return self._last_logits

    def reset(self) -> None:
        """Discharge all filter state (power-cycle the circuit)."""
        self._state = self.plan.stream_state(1)
        self._steps = 0
        self._last_logits = None

    # -- snapshot / restore ---------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Everything needed to resume this stream bit-exactly.

        A flat ``{key: ndarray}`` mapping (npz-compatible): the format
        tag, the plan identity (``model_class`` + ``dtype``, checked on
        load), ``steps_seen``, every RC stage's carried ``v`` row as
        ``state_<layer>_<stage>``, and ``last_logits`` when a step has
        been taken.  All arrays are copies — mutating the snapshot does
        not touch the live session.
        """
        d: Dict[str, np.ndarray] = {
            "format": np.array(self.STATE_FORMAT),
            "model_class": np.array(self.plan.model_class),
            "dtype": np.array(np.dtype(self.plan.dtype).name),
            "steps_seen": np.array(self._steps, dtype=np.int64),
        }
        for li, stages in enumerate(self._state):
            for si, v in enumerate(stages):
                d[f"state_{li}_{si}"] = v.copy()
        if self._last_logits is not None:
            d["last_logits"] = self._last_logits.copy()
        return d

    def save_state(self, path) -> None:
        """Snapshot to an ``.npz`` file (see :meth:`state_dict`)."""
        np.savez(path, **self.state_dict())

    def load_state(self, source) -> None:
        """Restore from a :meth:`state_dict` mapping or an npz path.

        Validates the format tag, the plan identity and every state
        shape before touching the session, so a failed load leaves the
        current state intact.  After a successful load, processing the
        remainder of a stream is bit-equal to never having snapshotted.
        """
        if isinstance(source, (str, os.PathLike)):
            with np.load(source) as npz:
                data = {k: npz[k] for k in npz.files}
        elif isinstance(source, Mapping):
            data = dict(source)
        else:
            raise TypeError(
                "load_state expects a state_dict mapping or an npz path, "
                f"got {type(source).__name__}"
            )

        def scalar(key):
            value = data.get(key)
            return value.item() if isinstance(value, np.ndarray) else value

        fmt = scalar("format")
        if fmt != self.STATE_FORMAT:
            raise ValueError(f"unsupported streaming snapshot format: {fmt!r}")
        if scalar("model_class") != self.plan.model_class:
            raise ValueError(
                f"snapshot is for model {scalar('model_class')!r}, "
                f"session plan is {self.plan.model_class!r}"
            )
        if scalar("dtype") != np.dtype(self.plan.dtype).name:
            raise ValueError(
                f"snapshot dtype {scalar('dtype')!r} does not match plan "
                f"dtype {np.dtype(self.plan.dtype).name!r}"
            )
        fresh = self.plan.stream_state(1)
        for li, stages in enumerate(fresh):
            for si, v in enumerate(stages):
                key = f"state_{li}_{si}"
                if key not in data:
                    raise ValueError(f"snapshot is missing {key!r}")
                arr = np.asarray(data[key])
                if arr.shape != v.shape:
                    raise ValueError(
                        f"snapshot {key} has shape {arr.shape}, "
                        f"plan expects {v.shape}"
                    )
                v[...] = arr
        last = data.get("last_logits")
        self._state = fresh
        self._steps = int(scalar("steps_seen"))
        self._last_logits = (
            None if last is None else np.array(last, dtype=self.plan.dtype)
        )

    # -- execution ------------------------------------------------------

    def process(self, chunk) -> np.ndarray:
        """Consume one chunk ``(time,)`` or ``(time, in_channels)``.

        Returns the per-step logits ``(time, n_classes)`` and carries
        the filter state forward, so consecutive calls are bit-equal to
        one call over the concatenated chunk (see module docstring).
        """
        from ..compile.plan import row_affine, row_ptanh, row_stage

        plan = self.plan
        x = plan.coerce_series(chunk)
        steps = x.shape[0]
        out = np.empty((steps, plan.n_classes), dtype=plan.dtype)
        layers = plan.layers
        state = self._state
        stage_tmp = self._scratch["stage_tmp"]
        affine = self._scratch["affine"]
        for k in range(steps):
            h = x[k : k + 1]
            for li, layer in enumerate(layers):
                tmp = stage_tmp[li]
                for si, (a, b) in enumerate(layer.stages):
                    # Same per-element arithmetic as the batched scan
                    # kernel (FilterScan / ForwardPlan._scan), in place
                    # on the carried (1, in) state row.
                    h = row_stage(a, b, h, state[li][si], out=state[li][si], tmp=tmp)
                mm = row_affine(h, layer.weights, layer.bias, out=affine[li])
                h = row_ptanh(mm, layer.eta, out=mm)
            out[k] = h[0]
        out *= plan.logit_scale
        self._steps += steps
        self._last_logits = out[-1].copy()
        return out

    def predict(self) -> int:
        """Predicted class after the samples consumed so far."""
        if self._last_logits is None:
            raise ValueError("no samples processed yet")
        return int(np.argmax(self._last_logits))

    def __repr__(self) -> str:
        return (
            f"StreamingSession({self.plan.model_class}, "
            f"steps_seen={self._steps}, dtype={self.plan.dtype})"
        )


class MultiStreamSession:
    """A fleet of concurrent streams stepped as one state matrix.

    Where :class:`StreamingSession` pays one Python-level step loop per
    stream, this engine holds the RC filter state of up to ``capacity``
    streams as a single ``(capacity, features)`` matrix per stage and
    advances **all active streams with one kernel call per layer per
    step** — the per-step interpreter overhead amortises over the whole
    fleet, which is where the serving-scale throughput comes from.

    Rows are allocated from a free-list: :meth:`open` claims a row,
    :meth:`close` discharges and releases it, :meth:`reset`
    power-cycles it in place — streams join and leave mid-flight
    without disturbing their neighbours.  :meth:`process_many` takes a
    ``{row: chunk}`` mapping of *ragged* chunks (any lengths, any
    subset of open rows): shorter chunks are zero-padded to the longest
    and a per-step mask freezes each row's state the moment its chunk
    ends, so per-stream chunk boundaries never synchronise.

    **Fleet-invariance.**  Every row's logits are bit-equal to a lone
    :class:`StreamingSession` over the same plan fed the same chunks
    in the same order, for arbitrary interleavings of
    ``process``/``reset``/``open``/``close`` across rows.  Structural
    guarantee: both engines call exactly the row-stable kernels in
    ``repro.compile.plan`` (elementwise ufuncs + fixed-order
    ``einsum``), whose per-row bits do not depend on the row count.
    Free and masked rows are carried untouched (masked write-back), so
    a padded step cannot perturb anyone's state.

    Not thread-safe: the serving tier serialises access through its
    fleet scheduler.
    """

    def __init__(self, source, capacity: int = 32,
                 precision: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.plan = _resolve_plan(source, precision, "MultiStreamSession")
        self.capacity = int(capacity)
        self._state = self.plan.stream_state(self.capacity)
        self._scratch = self.plan.stream_scratch(self.capacity)
        self._occupied = np.zeros(self.capacity, dtype=bool)
        # pop() hands out the lowest free row first.
        self._free: List[int] = list(range(self.capacity - 1, -1, -1))
        self._steps = np.zeros(self.capacity, dtype=np.int64)
        self._last: List[Optional[np.ndarray]] = [None] * self.capacity
        self._lens = np.zeros(self.capacity, dtype=np.int64)

    # -- row lifecycle --------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Open rows."""
        return self.capacity - len(self._free)

    @property
    def free_rows(self) -> int:
        """Rows available to :meth:`open`."""
        return len(self._free)

    def open(self) -> int:
        """Claim a discharged row for a new stream; returns its index."""
        if not self._free:
            raise RuntimeError(f"fleet is full ({self.capacity} rows)")
        row = self._free.pop()
        self._occupied[row] = True
        self._discharge(row)
        return row

    def close(self, row: int) -> None:
        """Release a row back to the free-list (state discharged)."""
        self._check_row(row)
        self._discharge(row)
        self._occupied[row] = False
        self._free.append(int(row))

    def reset(self, row: int) -> None:
        """Power-cycle one stream in place; its row stays claimed."""
        self._check_row(row)
        self._discharge(row)

    def _discharge(self, row: int) -> None:
        for stages in self._state:
            for v in stages:
                v[row] = 0.0
        self._steps[row] = 0
        self._last[row] = None

    def _check_row(self, row) -> None:
        if not (0 <= int(row) < self.capacity and self._occupied[int(row)]):
            raise KeyError(f"row {row} is not an open stream")

    # -- per-row views --------------------------------------------------

    def steps_seen(self, row: int) -> int:
        """Samples consumed by one stream since its last reset."""
        self._check_row(row)
        return int(self._steps[row])

    def last_logits(self, row: int) -> Optional[np.ndarray]:
        """One stream's logits after its most recent step."""
        self._check_row(row)
        return self._last[row]

    def predict(self, row: int) -> int:
        """One stream's predicted class so far."""
        self._check_row(row)
        if self._last[row] is None:
            raise ValueError("no samples processed yet")
        return int(np.argmax(self._last[row]))

    # -- execution ------------------------------------------------------

    def process(self, row: int, chunk) -> np.ndarray:
        """Advance a single stream (convenience over :meth:`process_many`)."""
        return self.process_many({row: chunk})[int(row)]

    def process_many(self, chunks: Mapping[int, "np.ndarray"]) -> Dict[int, np.ndarray]:
        """Advance several streams together through one batched step loop.

        ``chunks`` maps open row indices to series chunks of *any*
        (per-row independent) lengths.  Returns ``{row: (len, n_classes)
        logits}``; each row's state, ``steps_seen`` and ``last_logits``
        advance exactly as if it were processed alone.
        """
        from ..compile.plan import row_affine, row_ptanh, row_stage

        plan = self.plan
        coerced: Dict[int, np.ndarray] = {}
        for row, chunk in chunks.items():
            self._check_row(row)
            coerced[int(row)] = plan.coerce_series(chunk)
        if not coerced:
            return {}
        lens = self._lens
        lens[:] = 0
        for row, x in coerced.items():
            lens[row] = x.shape[0]
        max_len = int(lens.max())
        # Padded fleet input and per-step output trajectory.  Zero
        # padding is inert for free rows (a·0 + b·0 = 0); occupied rows
        # past their chunk end are frozen by the write-back mask below.
        X = np.zeros((max_len, self.capacity, plan.in_channels), dtype=plan.dtype)
        for row, x in coerced.items():
            X[: x.shape[0], row, :] = x
        Y = np.empty((max_len, self.capacity, plan.n_classes), dtype=plan.dtype)
        layers = plan.layers
        state = self._state
        stage_scr = self._scratch["stage"]
        stage_tmp = self._scratch["stage_tmp"]
        affine = self._scratch["affine"]
        active = np.empty((self.capacity, 1), dtype=bool)
        for k in range(max_len):
            np.greater(lens, k, out=active[:, 0])
            h = X[k]
            for li, layer in enumerate(layers):
                scr = stage_scr[li]
                tmp = stage_tmp[li]
                for si, (a, b) in enumerate(layer.stages):
                    v = state[li][si]
                    new = row_stage(a, b, h, v, out=scr, tmp=tmp)
                    # Only rows still inside their chunk advance; the
                    # rest keep their carried state bit-for-bit.
                    np.copyto(v, new, where=active)
                    h = v
                mm = row_affine(h, layer.weights, layer.bias, out=affine[li])
                h = row_ptanh(mm, layer.eta, out=mm)
            Y[k] = h
        out: Dict[int, np.ndarray] = {}
        for row, x in coerced.items():
            n = x.shape[0]
            logits = Y[:n, row].copy()
            logits *= plan.logit_scale
            out[row] = logits
            self._steps[row] += n
            self._last[row] = logits[-1].copy()
        return out

    def __repr__(self) -> str:
        return (
            f"MultiStreamSession({self.plan.model_class}, "
            f"occupancy={self.occupancy}/{self.capacity}, "
            f"dtype={self.plan.dtype})"
        )


class StreamingClassifier:
    """Stateful single-stream inference over a trained printed model.

    A sample-by-sample façade over :class:`StreamingSession`: the model
    is frozen through :func:`~repro.compile.compile_plan`, so streaming
    and the serving plan share one coefficient-resolution path and can
    never drift apart (pinned by regression test).

    Example
    -------
    >>> stream = StreamingClassifier(trained_model)
    >>> for sample in sensor_series:
    ...     logits = stream.push(sample)
    >>> prediction = int(np.argmax(logits))
    """

    def __init__(
        self, model: PrintedTemporalClassifier, precision: Optional[str] = None
    ) -> None:
        self.model = model
        self.session = StreamingSession(model, precision=precision)

    @property
    def steps_seen(self) -> int:
        """Samples consumed since the last reset."""
        return self.session.steps_seen

    def reset(self) -> None:
        """Discharge all filter state (power-cycle the circuit)."""
        self.session.reset()

    def push(self, sample) -> np.ndarray:
        """Consume one sensor sample (scalar, or a vector of
        ``in_channels`` values for multivariate models); returns the
        current logits."""
        channels = getattr(self.model, "in_channels", 1)
        x = np.atleast_1d(np.asarray(sample, dtype=np.float64))
        if x.shape != (channels,):
            raise ValueError(f"push() takes {channels} sample value(s), got shape {x.shape}")
        return self.session.process(x.reshape(1, channels))[0]

    def run(self, series: np.ndarray) -> np.ndarray:
        """Stream a whole series; returns logits at every step."""
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 1:
            raise ValueError("series must be 1-D")
        return self.session.process(series)

    def decision_latency(self, series: np.ndarray) -> int:
        """Earliest step from which the predicted class never changes.

        0 means the very first sample already settles the decision;
        ``len(series) - 1`` means the prediction flipped on the last
        sample.  Resets the stream state first.
        """
        self.reset()
        logits = self.run(series)
        predictions = np.argmax(logits, axis=1)
        final = predictions[-1]
        stable_from = predictions.size - 1
        for k in range(predictions.size - 1, -1, -1):
            if predictions[k] != final:
                break
            stable_from = k
        return int(stable_from)


# -- online evaluation harness ---------------------------------------------


def _rolling_accuracy(correct: np.ndarray, window: int) -> np.ndarray:
    """Causal rolling mean of ``correct`` over the last ``window`` steps
    (shorter prefix windows during warm-up)."""
    csum = np.concatenate([[0.0], np.cumsum(correct, dtype=np.float64)])
    steps = correct.size
    idx = np.arange(1, steps + 1)
    lo = np.maximum(idx - window, 0)
    return (csum[idx] - csum[lo]) / (idx - lo)


@dataclasses.dataclass
class StreamingEvalResult:
    """Everything :func:`evaluate_streaming` measured on one scenario."""

    scenario: str
    dataset: str
    model: str
    steps: int
    chunk_size: int
    accuracy: float
    predictions: np.ndarray
    correct: np.ndarray
    #: Causal rolling accuracy per step (window :attr:`curve_window`).
    accuracy_curve: np.ndarray
    curve_window: int
    changepoints: Tuple[int, ...]
    #: Mean correctness aligned at the changepoints over
    #: ``[-halo_pre, +halo_post)`` (``None`` without a complete halo).
    changepoint_curve: Optional[np.ndarray]
    changepoint_halo: Tuple[int, int]
    segment_accuracy: Tuple[float, ...]
    #: Mean accuracy in the halo before / after the changepoints.
    pre_change_accuracy: Optional[float]
    post_change_accuracy: Optional[float]
    #: Accuracy on burst-corrupted vs clean steps (``None`` without bursts).
    burst_accuracy: Optional[float]
    clean_accuracy: Optional[float]
    elapsed_s: float

    def to_record(self) -> dict:
        """JSON-serialisable record (consumed by ``repro.report``)."""
        return {
            "scenario": self.scenario,
            "dataset": self.dataset,
            "model": self.model,
            "steps": int(self.steps),
            "chunk_size": int(self.chunk_size),
            "accuracy": float(self.accuracy),
            "accuracy_curve": [float(v) for v in self.accuracy_curve],
            "curve_window": int(self.curve_window),
            "changepoints": [int(c) for c in self.changepoints],
            "changepoint_curve": (
                None
                if self.changepoint_curve is None
                else [float(v) for v in self.changepoint_curve]
            ),
            "changepoint_halo": [int(h) for h in self.changepoint_halo],
            "segment_accuracy": [float(v) for v in self.segment_accuracy],
            "pre_change_accuracy": self.pre_change_accuracy,
            "post_change_accuracy": self.post_change_accuracy,
            "burst_accuracy": self.burst_accuracy,
            "clean_accuracy": self.clean_accuracy,
            "elapsed_s": float(self.elapsed_s),
        }


def evaluate_streaming(
    source,
    stream,
    chunk_size: int = 16,
    curve_window: int = 64,
    changepoint_halo: Tuple[int, int] = (64, 64),
    precision: Optional[str] = None,
) -> StreamingEvalResult:
    """Online evaluation of one model over one sensor-stream scenario.

    Streams ``stream.x`` through a fresh :class:`StreamingSession` in
    ``chunk_size`` pieces, scoring the per-step prediction against the
    per-step label.  Emits ``stream.start`` / ``stream.chunk`` /
    ``stream.end`` telemetry into the active
    :class:`repro.telemetry.Run` (no-op without one).

    Parameters
    ----------
    source:
        A trained model or an already-compiled plan.
    stream:
        A :class:`repro.data.SensorStream` (or anything with ``x``,
        ``labels``, ``changepoints``, ``burst_mask``, ``name``,
        ``dataset`` attributes).
    chunk_size:
        Steps per :meth:`~StreamingSession.process` call (the transport
        chunking; the result is chunking-invariant, the telemetry
        granularity is not).
    curve_window:
        Rolling window of the accuracy-over-time curve.
    changepoint_halo:
        ``(pre, post)`` steps of the accuracy-around-changepoint curve.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if curve_window < 1:
        raise ValueError("curve_window must be >= 1")
    session = StreamingSession(source, precision=precision)
    x = np.asarray(stream.x, dtype=np.float64)
    labels = np.asarray(stream.labels)
    steps = x.shape[0]
    if labels.shape[0] != steps:
        raise ValueError(
            f"stream has {steps} steps but {labels.shape[0]} labels"
        )
    changepoints = tuple(int(c) for c in stream.changepoints)
    telemetry_emit(
        "stream.start",
        scenario=stream.name,
        dataset=stream.dataset,
        model=session.plan.model_class,
        steps=steps,
        chunk_size=chunk_size,
        n_changepoints=len(changepoints),
    )
    predictions = np.empty(steps, dtype=np.int64)
    t_start = time.perf_counter()
    for lo in range(0, steps, chunk_size):
        hi = min(lo + chunk_size, steps)
        t0 = time.perf_counter()
        logits = session.process(x[lo:hi])
        chunk_pred = np.argmax(logits, axis=-1)
        predictions[lo:hi] = chunk_pred
        telemetry_emit(
            "stream.chunk",
            scenario=stream.name,
            lo=lo,
            hi=hi,
            accuracy=float(np.mean(chunk_pred == labels[lo:hi])),
            latency_ms=(time.perf_counter() - t0) * 1e3,
        )
    elapsed = time.perf_counter() - t_start

    correct = (predictions == labels).astype(np.float64)
    curve = _rolling_accuracy(correct, curve_window)

    pre, post = changepoint_halo
    halos = [
        correct[cp - pre : cp + post]
        for cp in changepoints
        if cp - pre >= 0 and cp + post <= steps
    ]
    cp_curve = np.mean(halos, axis=0) if halos else None
    pre_acc = float(np.mean(cp_curve[:pre])) if cp_curve is not None else None
    post_acc = float(np.mean(cp_curve[pre:])) if cp_curve is not None else None

    edges = [0] + list(changepoints) + [steps]
    segment_accuracy = tuple(
        float(np.mean(correct[lo:hi])) for lo, hi in zip(edges[:-1], edges[1:])
    )

    burst_mask = np.asarray(stream.burst_mask, dtype=bool)
    if burst_mask.any():
        burst_acc = float(np.mean(correct[burst_mask]))
        clean_acc = float(np.mean(correct[~burst_mask]))
    else:
        burst_acc = clean_acc = None

    result = StreamingEvalResult(
        scenario=stream.name,
        dataset=stream.dataset,
        model=session.plan.model_class,
        steps=steps,
        chunk_size=chunk_size,
        accuracy=float(np.mean(correct)),
        predictions=predictions,
        correct=correct.astype(bool),
        accuracy_curve=curve,
        curve_window=curve_window,
        changepoints=changepoints,
        changepoint_curve=cp_curve,
        changepoint_halo=(int(pre), int(post)),
        segment_accuracy=segment_accuracy,
        pre_change_accuracy=pre_acc,
        post_change_accuracy=post_acc,
        burst_accuracy=burst_acc,
        clean_accuracy=clean_acc,
        elapsed_s=elapsed,
    )
    telemetry_emit(
        "stream.end",
        scenario=stream.name,
        dataset=stream.dataset,
        model=result.model,
        steps=steps,
        accuracy=result.accuracy,
        segment_accuracy=list(result.segment_accuracy),
        pre_change_accuracy=pre_acc,
        post_change_accuracy=post_acc,
        burst_accuracy=burst_acc,
        clean_accuracy=clean_acc,
        elapsed_s=elapsed,
    )
    return result
