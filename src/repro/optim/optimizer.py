"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from ..nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class holding the parameter list and a mutable learning rate.

    Subclasses implement :meth:`step`, consuming the gradients
    accumulated on each parameter since the last :meth:`zero_grad`.
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update; must be overridden."""
        raise NotImplementedError
