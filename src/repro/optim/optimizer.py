"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from ..nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class holding the parameter list and a mutable learning rate.

    Subclasses implement :meth:`step`, consuming the gradients
    accumulated on each parameter since the last :meth:`zero_grad`.
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update; must be overridden."""
        raise NotImplementedError

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Serialisable snapshot of optimiser state (for checkpoints).

        The base class records the learning rate only; subclasses with
        per-parameter state (momenta etc.) extend the dict.  Array
        values are copied, so later steps cannot mutate a snapshot.
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (bit-exact)."""
        self.lr = float(state["lr"])
