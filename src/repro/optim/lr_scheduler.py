"""Learning-rate schedules.

The paper's protocol (Sec. IV-A3): initial LR 0.1, halved after every
100 epochs without validation-loss improvement, training terminated once
the LR drops below 1e-5.  :class:`ReduceLROnPlateau` implements exactly
that policy; :meth:`should_stop` exposes the termination criterion.
"""

from __future__ import annotations

import math

from .optimizer import Optimizer

__all__ = ["ReduceLROnPlateau", "StepLR"]


class ReduceLROnPlateau:
    """Halve (by ``factor``) the LR after ``patience`` epochs of no improvement.

    Parameters
    ----------
    optimizer:
        Optimizer whose ``lr`` attribute is managed.
    factor:
        Multiplicative LR decay applied on plateau (paper: 0.5).
    patience:
        Number of consecutive non-improving epochs tolerated (paper: 100).
    min_lr:
        Training should terminate below this LR (paper: 1e-5).
    threshold:
        Minimum relative improvement that counts as progress.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 100,
        min_lr: float = 1e-5,
        threshold: float = 1e-4,
    ) -> None:
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        if patience < 0:
            raise ValueError("patience must be non-negative")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.threshold = threshold
        self.best = math.inf
        self.num_bad_epochs = 0

    def step(self, metric: float) -> None:
        """Record one epoch's validation metric (lower is better)."""
        if metric < self.best * (1.0 - self.threshold) or self.best is math.inf:
            self.best = metric
            self.num_bad_epochs = 0
        else:
            self.num_bad_epochs += 1
        if self.num_bad_epochs > self.patience:
            self.optimizer.lr *= self.factor
            self.num_bad_epochs = 0

    def should_stop(self) -> bool:
        """True once the LR has decayed below ``min_lr`` (paper's stop rule)."""
        return self.optimizer.lr < self.min_lr

    def state_dict(self) -> dict:
        """Serialisable snapshot of the plateau tracker (for checkpoints)."""
        return {"best": self.best, "num_bad_epochs": self.num_bad_epochs}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (bit-exact)."""
        self.best = float(state["best"])
        self.num_bad_epochs = int(state["num_bad_epochs"])


class StepLR:
    """Decay the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch, decaying at each boundary."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
