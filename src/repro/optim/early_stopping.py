"""Early-stopping helper tracking the best model seen so far."""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Track a validation metric and snapshot the best state dict.

    Complementary to the LR-based termination of the paper: callers may
    bound the number of non-improving epochs directly.
    """

    def __init__(self, patience: int = 200, minimize: bool = True) -> None:
        if patience <= 0:
            raise ValueError("patience must be positive")
        self.patience = patience
        self.minimize = minimize
        self.best_metric = math.inf if minimize else -math.inf
        self.best_state: Optional[Dict[str, np.ndarray]] = None
        self.counter = 0

    def update(self, metric: float, state: Dict[str, np.ndarray]) -> bool:
        """Record an epoch result; returns True if it was an improvement."""
        improved = metric < self.best_metric if self.minimize else metric > self.best_metric
        if improved:
            self.best_metric = metric
            self.best_state = {k: v.copy() for k, v in state.items()}
            self.counter = 0
        else:
            self.counter += 1
        return improved

    def should_stop(self) -> bool:
        """True after ``patience`` consecutive epochs without improvement."""
        return self.counter >= self.patience
