"""Adam and AdamW.

The paper trains every model "with the AdamW optimizer [31] with default
settings" — :class:`AdamW` implements the decoupled weight-decay update
of Loshchilov & Hutter with PyTorch's default hyper-parameters.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam with (optionally) L2-coupled weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[np.ndarray] = [np.zeros_like(p.data) for p in self.params]
        self._v: List[np.ndarray] = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def _decay_into_grad(self) -> bool:
        return True

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay and self._decay_into_grad():
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay and not self._decay_into_grad():
                p.data = p.data - self.lr * self.weight_decay * p.data
            p.data = p.data - self.lr * update

    def state_dict(self) -> dict:
        """Serialisable snapshot: lr, step count and first/second moments.

        Restoring via :meth:`load_state_dict` makes the next
        :meth:`step` bit-identical to an uninterrupted run — the basis
        of the trainer's checkpoint/resume guarantee.
        """
        state = super().state_dict()
        state.update(
            {
                "t": self._t,
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v],
            }
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (bit-exact)."""
        super().load_state_dict(state)
        if len(state["m"]) != len(self.params) or len(state["v"]) != len(self.params):
            raise ValueError(
                f"optimizer state holds {len(state['m'])} moment arrays for "
                f"{len(self.params)} parameters"
            )
        self._t = int(state["t"])
        self._m = [np.asarray(m, dtype=np.float64).copy() for m in state["m"]]
        self._v = [np.asarray(v, dtype=np.float64).copy() for v in state["v"]]


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2017).

    Defaults match ``torch.optim.AdamW``: betas=(0.9, 0.999), eps=1e-8,
    weight_decay=0.01.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)

    def _decay_into_grad(self) -> bool:
        return False
