"""Adam and AdamW.

The paper trains every model "with the AdamW optimizer [31] with default
settings" — :class:`AdamW` implements the decoupled weight-decay update
of Loshchilov & Hutter with PyTorch's default hyper-parameters.

Precision policy
----------------
Moments follow the *master* dtype of the active precision policy
(:mod:`repro.autograd.precision`).  Under the ``mixed`` policy the
optimizer additionally keeps a float64 **master copy** of every
parameter (built lazily on the first :meth:`step` so the policy active
at training time, not construction time, decides): gradients arrive in
float32, are cast up once, the Adam update runs entirely in float64
against the master weights, and the result is cast back to the
parameter's compute dtype at the step boundary — the PyTorch-AMP
recipe, keeping long-horizon update numerics stable at float32 compute
cost.  Under the pure policies (``float64`` — the bit-equal oracle —
and ``float32``) no master copy exists and the update path is
unchanged.

The moment updates run **in place** (``np.multiply(..., out=)`` /
``+=``) through one reusable scratch buffer per parameter instead of
rebinding freshly allocated arrays each step; elementwise this performs
the identical sequence of IEEE operations, so the result is bit-equal
to the historical rebinding implementation (asserted by the
checkpoint-resume suite).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..autograd.precision import get_precision
from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam with (optionally) L2-coupled weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[np.ndarray] = [np.zeros_like(p.data) for p in self.params]
        self._v: List[np.ndarray] = [np.zeros_like(p.data) for p in self.params]
        #: float64 master copies of the parameters (``mixed`` policy
        #: only); built lazily on the first step.
        self._master: Optional[List[np.ndarray]] = None
        #: Per-parameter scratch buffers reused across steps by the
        #: in-place moment updates.
        self._scratch: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._t = 0

    def _decay_into_grad(self) -> bool:
        return True

    def _ensure_master(self) -> None:
        """Build the master-weight store if the active policy is mixed."""
        policy = get_precision()
        if not policy.is_mixed or self._master is not None:
            return
        # float32 -> float64 casts are exact, so promoting mid-run
        # moments (e.g. after a policy switch) loses nothing.
        self._master = [p.data.astype(policy.master) for p in self.params]
        self._m = [m.astype(policy.master, copy=False) for m in self._m]
        self._v = [v.astype(policy.master, copy=False) for v in self._v]

    def step(self) -> None:
        self._ensure_master()
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            master = self._master[i] if self._master is not None else None
            weights = p.data if master is None else master
            grad = p.grad
            if grad.dtype != weights.dtype:
                # Mixed policy: cast the float32 gradient up once; the
                # whole update then runs at master precision.
                grad = grad.astype(weights.dtype)
            if self.weight_decay and self._decay_into_grad():
                grad = grad + self.weight_decay * weights
            m, v = self._m[i], self._v[i]
            scratch = self._scratch[i]
            if (
                scratch is None
                or scratch.shape != grad.shape
                or scratch.dtype != grad.dtype
            ):
                scratch = self._scratch[i] = np.empty_like(grad)
            # In-place moment updates — elementwise the identical IEEE
            # operation sequence as the historical
            # ``m = beta1*m + (1-beta1)*grad`` rebinding, so bit-equal,
            # but with zero fresh allocations (the ``grad**2``
            # temporary of the old second-moment update included).
            np.multiply(m, self.beta1, out=m)
            np.multiply(grad, 1.0 - self.beta1, out=scratch)
            m += scratch
            np.multiply(v, self.beta2, out=v)
            np.multiply(grad, grad, out=scratch)
            scratch *= 1.0 - self.beta2
            v += scratch
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if master is None:
                if self.weight_decay and not self._decay_into_grad():
                    p.data = p.data - self.lr * self.weight_decay * p.data
                p.data = p.data - self.lr * update
            else:
                if self.weight_decay and not self._decay_into_grad():
                    master -= self.lr * self.weight_decay * master
                master -= self.lr * update
                # Cast-on-step boundary: the compute-side parameter is
                # always the rounded view of the float64 master.
                p.data = master.astype(p.data.dtype)

    def state_dict(self) -> dict:
        """Serialisable snapshot: lr, step count and first/second moments.

        Restoring via :meth:`load_state_dict` makes the next
        :meth:`step` bit-identical to an uninterrupted run — the basis
        of the trainer's checkpoint/resume guarantee.  Under the mixed
        policy the float64 master weights are part of the snapshot.
        """
        state = super().state_dict()
        state.update(
            {
                "t": self._t,
                "m": [m.copy() for m in self._m],
                "v": [v.copy() for v in self._v],
            }
        )
        if self._master is not None:
            state["master"] = [w.copy() for w in self._master]
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (bit-exact).

        Array dtypes are preserved as stored, so a float64-oracle
        checkpoint restores float64 moments and a float32 one float32.
        """
        super().load_state_dict(state)
        if len(state["m"]) != len(self.params) or len(state["v"]) != len(self.params):
            raise ValueError(
                f"optimizer state holds {len(state['m'])} moment arrays for "
                f"{len(self.params)} parameters"
            )
        self._t = int(state["t"])
        self._m = [np.asarray(m).copy() for m in state["m"]]
        self._v = [np.asarray(v).copy() for v in state["v"]]
        masters = state.get("master")
        if masters is not None:
            if len(masters) != len(self.params):
                raise ValueError(
                    f"optimizer state holds {len(masters)} master arrays for "
                    f"{len(self.params)} parameters"
                )
            self._master = [np.asarray(w).copy() for w in masters]
        else:
            self._master = None
        self._scratch = [None] * len(self.params)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2017).

    Defaults match ``torch.optim.AdamW``: betas=(0.9, 0.999), eps=1e-8,
    weight_decay=0.01.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)

    def _decay_into_grad(self) -> bool:
        return False
