"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Plain / momentum SGD.

    ``v <- momentum * v + grad``; ``p <- p - lr * v``.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad
