"""Optimisers and schedules (the ``torch.optim`` substitute)."""

from .adam import Adam, AdamW
from .early_stopping import EarlyStopping
from .lr_scheduler import ReduceLROnPlateau, StepLR
from .optimizer import Optimizer
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "ReduceLROnPlateau",
    "StepLR",
    "EarlyStopping",
]
