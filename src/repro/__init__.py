"""ADAPT-pNC reproduction — robust printed temporal neuromorphic circuits.

A full-stack, numpy-only reproduction of "ADAPT-pNC: Mitigating Device
Variability and Sensor Noise in Printed Neuromorphic Circuits with SO
Adaptive Learnable Filters" (DATE 2025), including its substrates:

* :mod:`repro.autograd` / :mod:`repro.nn` / :mod:`repro.optim` —
  reverse-mode autodiff, module system and optimisers (the PyTorch
  substitute);
* :mod:`repro.spice` — an MNA analog circuit simulator (the Cadence
  substitute);
* :mod:`repro.circuits` — printed crossbars, ptanh activations,
  first/second-order learnable filters, variation models, pPDK;
* :mod:`repro.data` — 15 synthetic UCR-like benchmark datasets;
* :mod:`repro.augment` — time-series augmentation (the tsaug
  substitute);
* :mod:`repro.core` — the evaluated models and the experiment harness
  for every table and figure;
* :mod:`repro.hw` — device counting and power estimation (Table III);
* :mod:`repro.tuning` — augmentation hyper-parameter search (the Ray
  Tune substitute);
* :mod:`repro.serve` — trained models frozen into graph-free forward
  plans (:func:`repro.compile.compile_plan`) behind a micro-batching
  HTTP inference service (see ``docs/SERVING.md``).

Quickstart::

    from repro.core import AdaptPNC, Trainer, TrainingConfig
    from repro.data import load_dataset

    ds = load_dataset("PowerCons")
    model = AdaptPNC(ds.info.n_classes)
    Trainer(model, TrainingConfig.ci(), variation_aware=True).fit(
        ds.x_train, ds.y_train, ds.x_val, ds.y_val)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
