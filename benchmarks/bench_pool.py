"""Persistent pool vs spawn-per-cell: startup amortization and throughput.

The spawn-per-cell ``"parallel"`` executor pays one process startup
(fork + interpreter state) for *every* cell attempt; the ``"pool"``
executor pays it once per worker and then streams tasks over pipes.
On a campaign of many small cells the startup cost dominates, so the
pooled executor's throughput must be at least the spawn-per-cell
executor's — while staying bit-equal to the serial oracle.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_pool.py --cells 40
    PYTHONPATH=src python benchmarks/bench_pool.py --assert-speedup 1.0

``--assert-speedup`` exits non-zero when pooled throughput is below
that multiple of spawn-per-cell throughput; on single-core runners
(``os.cpu_count() == 1``) the assertion is skipped — scheduling noise
on one core can mask the startup win this benchmark isolates.
"""

import argparse
import json
import os
import time

import numpy as np

from repro.parallel import SweepCell, SweepOptions, run_cells


def cell_small(i: int, size: int):
    """A deliberately small cell (~1 ms): startup cost dominates it."""
    rng = np.random.default_rng(i)
    x = rng.standard_normal(size)
    return {"i": i, "sum_sq": float(np.sum(x * x))}


def _measure_startup(ctx_spawns: int = 5) -> float:
    """Mean seconds to start + join one (trivial) worker process."""
    import multiprocessing

    ctx = multiprocessing.get_context()
    t0 = time.perf_counter()
    for _ in range(ctx_spawns):
        proc = ctx.Process(target=int, daemon=True)
        proc.start()
        proc.join()
    return (time.perf_counter() - t0) / ctx_spawns


def run(n_cells: int = 40, max_workers: int = 2, size: int = 20_000) -> dict:
    cells = [SweepCell(key=("cell", str(i)), args=(i, size)) for i in range(n_cells)]

    t0 = time.perf_counter()
    serial = run_cells(cell_small, cells, SweepOptions(executor="serial"))
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    spawned = run_cells(
        cell_small, cells, SweepOptions(executor="parallel", max_workers=max_workers)
    )
    spawn_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = run_cells(
        cell_small, cells, SweepOptions(executor="pool", max_workers=max_workers)
    )
    pool_s = time.perf_counter() - t0

    mismatches = [
        "/".join(key)
        for key in serial
        if not (
            serial[key].value == pooled[key].value == spawned[key].value
            and serial[key].ok and pooled[key].ok and spawned[key].ok
        )
    ]

    # Startup-amortization breakdown: the spawn-per-cell executor pays
    # one process startup per cell, the pool one per worker slot.
    startup_s = _measure_startup()
    return {
        "n_cells": n_cells,
        "max_workers": max_workers,
        "cpu_count": os.cpu_count() or 1,
        "serial_s": serial_s,
        "spawn_s": spawn_s,
        "pool_s": pool_s,
        "spawn_cells_per_s": n_cells / spawn_s if spawn_s > 0 else float("inf"),
        "pool_cells_per_s": n_cells / pool_s if pool_s > 0 else float("inf"),
        "pool_speedup_vs_spawn": spawn_s / pool_s if pool_s > 0 else float("inf"),
        "startup_per_process_s": startup_s,
        "startups_spawn": n_cells,
        "startups_pool": max_workers,
        "est_startup_overhead_spawn_s": n_cells * startup_s,
        "est_startup_overhead_pool_s": max_workers * startup_s,
        "bit_equal": not mismatches,
        "mismatches": mismatches,
    }


def test_pool_amortizes_startup(benchmark):
    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nspawn {record['spawn_s']:.2f}s  pool {record['pool_s']:.2f}s  "
        f"({record['pool_speedup_vs_spawn']:.2f}x) on {record['cpu_count']} cores"
    )
    assert record["bit_equal"], record["mismatches"]
    if record["cpu_count"] >= 2:
        assert record["pool_speedup_vs_spawn"] >= 1.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=40)
    parser.add_argument("--max-workers", type=int, default=2)
    parser.add_argument("--size", type=int, default=20_000, help="per-cell array size")
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless pool >= X times spawn throughput (skipped on 1 core)",
    )
    parser.add_argument("--output", default=None, help="write the record as JSON here")
    args = parser.parse_args()

    record = run(n_cells=args.cells, max_workers=args.max_workers, size=args.size)
    print(
        f"serial {record['serial_s']:.2f}s  "
        f"spawn-per-cell {record['spawn_s']:.2f}s "
        f"({record['spawn_cells_per_s']:.1f} cells/s)  "
        f"pool {record['pool_s']:.2f}s ({record['pool_cells_per_s']:.1f} cells/s)"
    )
    print(
        f"startup ~{record['startup_per_process_s'] * 1e3:.1f} ms/process: "
        f"spawn-per-cell pays {record['startups_spawn']} startups "
        f"(~{record['est_startup_overhead_spawn_s']:.2f}s), "
        f"pool pays {record['startups_pool']} "
        f"(~{record['est_startup_overhead_pool_s']:.2f}s)"
    )
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump(record, fh, indent=2)
        print(f"wrote {args.output}")

    if not record["bit_equal"]:
        print("FAIL: executors diverged on cells:", record["mismatches"])
        return 1
    print("pool and spawn-per-cell executors are bit-equal to the serial oracle")

    if args.assert_speedup is not None:
        if record["cpu_count"] < 2:
            print(
                f"single-core machine: skipping the >= {args.assert_speedup:.1f}x "
                "pool-vs-spawn throughput assertion"
            )
        elif record["pool_speedup_vs_spawn"] < args.assert_speedup:
            print(
                f"FAIL: pool is only {record['pool_speedup_vs_spawn']:.2f}x "
                f"spawn-per-cell (< required {args.assert_speedup:.1f}x)"
            )
            return 1
        else:
            print(
                f"pool is {record['pool_speedup_vs_spawn']:.2f}x spawn-per-cell "
                f">= {args.assert_speedup:.1f}x"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
