"""Fig. 6 — augmentation techniques on the PowerCons dataset.

Regenerates the figure's data: one PowerCons series under each of the
five augmentations (original, jittering, time warping, magnitude
scaling, frequency-domain).  The series are emitted as CSV next to the
benchmark output so they can be plotted externally.
"""

import csv
import pathlib

import numpy as np

from repro.core import run_fig6

OUT = pathlib.Path(__file__).parent / "fig6_augmentation.csv"


def test_fig6_augmentation(benchmark):
    series = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    keys = list(series)
    with OUT.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t"] + keys)
        for t in range(len(series["original"])):
            writer.writerow([t] + [f"{series[k][t]:.6f}" for k in keys])
    print(f"\nwrote {OUT}")

    original = series["original"]
    for key, values in series.items():
        assert len(values) == 64
        if key != "original":
            assert not np.allclose(values, original), f"{key} left the series unchanged"
            # augmentations are perturbations, not replacements
            assert np.corrcoef(values, original)[0, 1] > 0.2, key
