"""Ablation — Monte-Carlo sample count N of the training objective.

Eq. (13) approximates the expected loss with N variation draws per
step.  The paper does not report its N; DESIGN.md calls the default
(N = 5 at paper scale) out as a design choice.  This benchmark sweeps N
and reports robust accuracy vs training cost — the expected shape:
N = 1 is noticeably noisier/weaker, returns diminish beyond a handful.
"""

from dataclasses import replace

import numpy as np

from repro.core import AdaptPNC, Trainer, TrainingConfig, evaluate_under_variation
from repro.data import load_dataset
from repro.utils import render_table

N_VALUES = (1, 2, 5)


def run_sweep(dataset_name: str = "Slope"):
    dataset = load_dataset(dataset_name, n_samples=90, seed=0)
    base = replace(TrainingConfig.ci(), max_epochs=60)
    rows = {}
    for n in N_VALUES:
        accs = []
        for seed in (0, 1):
            model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(seed))
            trainer = Trainer(
                model, replace(base, mc_samples=n), variation_aware=True, seed=seed
            )
            trainer.fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
            accs.append(
                evaluate_under_variation(
                    model, dataset.x_test, dataset.y_test, delta=0.10, mc_samples=5, seed=0
                ).mean
            )
        rows[n] = (float(np.mean(accs)), float(np.std(accs)))
    return rows


def test_mc_samples_ablation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = [[n, f"{m:.3f} ± {s:.3f}"] for n, (m, s) in rows.items()]
    print("\n" + render_table(["MC samples N", "Robust accuracy"], table))

    best = max(m for m, _ in rows.values())
    # More MC draws must not lose much ground to the best setting.
    assert rows[max(N_VALUES)][0] >= best - 0.1
    assert all(0.0 <= m <= 1.0 for m, _ in rows.values())
