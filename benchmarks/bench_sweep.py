"""Serial-oracle vs sharded-parallel sweep: speedup and bit-equality.

The :mod:`repro.parallel` orchestrator shards the Table-I cell grid
``dataset × model × seed`` across worker processes; because every cell
derives all of its randomness from its own coordinates, the parallel
executor must reproduce the serial oracle bit-for-bit while finishing
in roughly ``1/min(workers, cells)`` of the wall-clock (training is
CPU-bound, so the speedup only materialises on multi-core machines).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sweep.py --max-workers 2
    PYTHONPATH=src python benchmarks/bench_sweep.py --assert-speedup 1.5

``--assert-speedup`` exits non-zero when the parallel campaign is not
at least that many times faster than the serial oracle; on single-core
runners (``os.cpu_count() == 1``) the assertion is skipped because no
process-level speedup is physically available there.
"""

import argparse
import json
import os
import time
from dataclasses import replace

from repro.core import ExperimentConfig, format_table1, run_table1
from repro.core.training import TrainingConfig
from repro.parallel import SweepOptions


def make_config(scale: str) -> ExperimentConfig:
    if scale == "paper":
        return ExperimentConfig.paper()
    if scale == "ci":
        return ExperimentConfig.ci()
    # Smoke: two datasets x three models x two seeds = 12 cells, enough
    # to shard meaningfully while staying minutes-scale on one core.
    return ExperimentConfig(
        datasets=("Slope", "GPOVY"),
        n_samples=60,
        seeds=(0, 1),
        training=replace(TrainingConfig.ci(), max_epochs=8, lr_patience=3),
        eval_mc=2,
        top_k=2,
    )


def run(scale: str = "smoke", max_workers: int = 2) -> dict:
    config = make_config(scale)

    t0 = time.perf_counter()
    serial = run_table1(config, sweep=SweepOptions(executor="serial"))
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_table1(
        config,
        sweep=SweepOptions(executor="parallel", max_workers=max_workers),
    )
    parallel_s = time.perf_counter() - t0

    mismatches = []
    for dataset, row in serial.items():
        for kind, entry in row.items():
            other = parallel[dataset][kind]
            if (entry.mean, entry.std, entry.n_failed) != (
                other.mean,
                other.std,
                other.n_failed,
            ):
                mismatches.append((dataset, kind, repr(entry), repr(other)))

    return {
        "scale": scale,
        "max_workers": max_workers,
        "cpu_count": os.cpu_count() or 1,
        "n_cells": len(config.datasets) * 3 * len(config.seeds),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "bit_equal": not mismatches,
        "mismatches": mismatches,
        "table": format_table1(serial),
    }


def test_sweep_equivalence(benchmark):
    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nserial {record['serial_s']:.1f}s  parallel {record['parallel_s']:.1f}s  "
          f"speedup {record['speedup']:.2f}x on {record['cpu_count']} cores")
    assert record["bit_equal"], record["mismatches"]
    if record["cpu_count"] >= 2:
        # Two workers over 12 cells should recover a real speedup; be
        # lenient (1.3x) against noisy shared CI runners.
        assert record["speedup"] >= 1.3, f"only {record['speedup']:.2f}x"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("smoke", "ci", "paper"), default="smoke")
    parser.add_argument("--max-workers", type=int, default=2)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless parallel is >= X times faster (skipped on 1 core)",
    )
    parser.add_argument("--output", default=None, help="write the record as JSON here")
    args = parser.parse_args()

    record = run(scale=args.scale, max_workers=args.max_workers)
    print(record["table"])
    print(
        f"serial {record['serial_s']:.1f}s  parallel {record['parallel_s']:.1f}s  "
        f"speedup {record['speedup']:.2f}x  "
        f"(workers={record['max_workers']}, cores={record['cpu_count']})"
    )
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump({k: v for k, v in record.items() if k != "table"}, fh, indent=2)
        print(f"wrote {args.output}")

    if not record["bit_equal"]:
        print("FAIL: parallel sweep diverged from the serial oracle:")
        for mismatch in record["mismatches"]:
            print("  ", mismatch)
        return 1
    print("parallel sweep is bit-equal to the serial oracle")

    if args.assert_speedup is not None:
        if record["cpu_count"] < 2:
            print(
                f"single-core machine: skipping the >= {args.assert_speedup:.1f}x "
                "speedup assertion (no parallelism physically available)"
            )
        elif record["speedup"] < args.assert_speedup:
            print(
                f"FAIL: speedup {record['speedup']:.2f}x "
                f"< required {args.assert_speedup:.1f}x"
            )
            return 1
        else:
            print(f"speedup {record['speedup']:.2f}x >= {args.assert_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
