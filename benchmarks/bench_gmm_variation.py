"""Extension — robustness under the GMM device-level variation model.

The paper notes that printing variations "are often modeled using a
uniform distribution for electrical characteristics and addressed by a
Gaussian Mixture Model at the device level [24]" (Sec. II-E).  Training
uses the uniform model; this benchmark checks that the robustness
*transfers*: a variation-aware ADAPT-pNC evaluated under the
Rasheed-style GMM should hold accuracy comparably to the uniform
evaluation it was trained for.
"""

import numpy as np

from repro.augment import default_config
from repro.circuits import GMMVariation, UniformVariation
from repro.core import AdaptPNC, Trainer, TrainingConfig, evaluate_under_model
from repro.data import load_dataset
from repro.utils import render_table


def run_comparison(dataset_name: str = "Slope"):
    dataset = load_dataset(dataset_name, n_samples=90, seed=0)
    model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    Trainer(
        model,
        TrainingConfig.ci(),
        variation_aware=True,
        augmentation=default_config(dataset_name),
        seed=0,
    ).fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)

    models = {
        "uniform ±10% (training model)": UniformVariation(0.10),
        "GMM (Rasheed et al. [24])": GMMVariation(),
        "uniform ±20% (beyond spec)": UniformVariation(0.20),
    }
    return {
        label: evaluate_under_model(
            model, dataset.x_test, dataset.y_test, variation, mc_samples=8, seed=0
        )
        for label, variation in models.items()
    }


def test_gmm_variation_transfer(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = [[label, f"{r.mean:.3f} ± {r.std:.3f}"] for label, r in results.items()]
    print("\n" + render_table(["Evaluation model", "Accuracy"], rows))

    uniform = results["uniform ±10% (training model)"].mean
    gmm = results["GMM (Rasheed et al. [24])"].mean
    # Robustness transfers across process models of similar spread.
    assert gmm >= uniform - 0.15
    assert all(0.0 <= r.mean <= 1.0 for r in results.values())
