"""Extension — fault tolerance under missing-droplet defects.

The paper motivates variation-awareness with printing defects —
"droplet irregularities and missing droplets" (Sec. II-E).  Parametric
variation aside, a missing droplet is a *catastrophic* open circuit.
This benchmark sweeps defect counts across the three fault classes and
reports the accuracy degradation of a trained ADAPT-pNC.  Expected
shape: graceful degradation for single defects (the crossbar's
conductance-divider arithmetic redistributes weight), steeper decline
as defects accumulate.
"""

import numpy as np

from repro.analysis import fault_sweep
from repro.augment import default_config
from repro.core import AdaptPNC, Trainer, TrainingConfig, accuracy
from repro.data import load_dataset
from repro.utils import render_table


def run_fault_study(dataset_name: str = "Slope"):
    dataset = load_dataset(dataset_name, n_samples=90, seed=0)
    model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    Trainer(
        model,
        TrainingConfig.ci(),
        variation_aware=True,
        augmentation=default_config(dataset_name),
        seed=0,
    ).fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
    clean = accuracy(model, dataset.x_test, dataset.y_test)
    sweep = fault_sweep(model, dataset.x_test, dataset.y_test, max_faults=3, trials=6)
    return clean, sweep


def test_fault_tolerance(benchmark):
    clean, sweep = benchmark.pedantic(run_fault_study, rounds=1, iterations=1)
    rows = []
    for kind, results in sweep.items():
        for r in results:
            rows.append([kind, r.n_faults, f"{r.mean_accuracy:.3f} ± {r.std_accuracy:.3f}"])
    print(f"\nfault-free accuracy: {clean:.3f}")
    print(render_table(["Fault kind", "#defects", "Accuracy"], rows))

    for kind, results in sweep.items():
        # Single defects degrade gracefully: no total collapse.
        assert results[0].mean_accuracy > 0.25, kind
        assert all(0.0 <= r.mean_accuracy <= 1.0 for r in results)
