"""Fig. 5 — the no-variation-aware baseline under stress.

Trains the clean baseline pTPNC and evaluates it on the 2x2 grid of
conditions: {clean, perturbed inputs} x {ideal, ±10 % components}.
The paper's point: accuracy drops significantly away from the
clean-and-ideal corner.
"""

from repro.core import run_fig5
from repro.utils import render_table


def test_fig5_baseline_collapse(benchmark, config):
    result = benchmark.pedantic(
        run_fig5, args=(config,), kwargs={"dataset_name": "CBF"}, rounds=1, iterations=1
    )
    rows = [[k.replace("_", " "), f"{v:.3f}"] for k, v in result.items()]
    print("\n" + render_table(["Condition", "Accuracy"], rows))

    # The stressed corner must not beat the clean-ideal corner by a margin.
    assert result["perturbed_varied"] <= result["clean_ideal"] + 0.1
    assert all(0.0 <= v <= 1.0 for v in result.values())
