"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures
through the same code path as the full protocol, at a scale set by the
``REPRO_BENCH_SCALE`` environment variable:

* ``smoke`` (default) — seconds per artefact, 1-3 datasets, 1 seed;
* ``ci`` — minutes, all 15 datasets, 2 seeds, short training;
* ``paper`` — the published protocol (hours; 10 seeds, full training).

Run with::

    pytest benchmarks/ --benchmark-only
    REPRO_BENCH_SCALE=ci pytest benchmarks/ --benchmark-only
"""

import os

import pytest

from repro.core import ExperimentConfig

SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")


def make_config() -> ExperimentConfig:
    if SCALE == "paper":
        return ExperimentConfig.paper()
    if SCALE == "ci":
        return ExperimentConfig.ci()
    return ExperimentConfig.smoke()


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return make_config()
