"""Extension — manufacturing yield: baseline vs robustness-aware design.

Yield (fraction of fabricated instances meeting an accuracy spec) is
the economic consequence of the paper's robustness claims.  This
benchmark trains both designs and compares yield at a moderate spec —
the expected shape: the variation-aware ADAPT-pNC yields at least as
well as the clean-trained baseline.
"""

import numpy as np

from repro.analysis import estimate_yield
from repro.augment import default_config
from repro.core import AdaptPNC, PTPNC, Trainer, TrainingConfig
from repro.data import load_dataset
from repro.utils import render_table


def run_yield(dataset_name: str = "GPOVY", spec: float = 0.7):
    dataset = load_dataset(dataset_name, n_samples=90, seed=0)
    results = {}
    for label, cls, va, aug in (
        ("ptpnc", PTPNC, False, None),
        ("adapt", AdaptPNC, True, default_config(dataset_name)),
    ):
        model = cls(dataset.info.n_classes, rng=np.random.default_rng(0))
        Trainer(model, TrainingConfig.ci(), variation_aware=va, augmentation=aug, seed=0).fit(
            dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
        )
        results[label] = estimate_yield(
            model, dataset.x_test, dataset.y_test, threshold=spec, instances=30, seed=0
        )
    return results


def test_yield_comparison(benchmark):
    results = benchmark.pedantic(run_yield, rounds=1, iterations=1)
    rows = [
        [label, f"{r.yield_fraction:.0%}", f"{r.mean_accuracy:.3f}", f"{r.worst_case:.3f}"]
        for label, r in results.items()
    ]
    print("\n" + render_table(["Model", "Yield @ 0.7", "Mean acc", "Worst instance"], rows))

    assert results["adapt"].yield_fraction >= results["ptpnc"].yield_fraction - 0.1
    assert results["adapt"].worst_case >= 0.0
