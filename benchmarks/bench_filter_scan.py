"""Fused filter-scan kernel vs node-per-step autograd oracle.

The learnable-filter recurrence ``v_k = a v_{k−1} + b x_k`` dominates
training wall-clock: unrolled through the per-op autograd engine it
costs O(steps) Python graph nodes per forward plus a matching tape walk
per backward.  The fused :func:`repro.autograd.filter_scan` kernel
collapses the whole scan into one custom-Function node with an analytic
reverse-time adjoint; this benchmark measures the resulting speedup
through a SecondOrderLearnableFilter bank at the acceptance workload
(T=64, batch=32, draws=8) and the end-to-end ``Trainer.fit`` epoch
improvement, and asserts the two backends remain exactly equivalent
(bit-equal forwards; gradients within accumulation error).

Acceptance targets: ≥ 5× SO-LF forward+backward speedup over the
unfused oracle; losses ≤ 1e-10 apart; per-parameter gradients ≤ 1e-8.
"""

import numpy as np

from repro.core import (
    SCAN_EQUIVALENCE_ATOL,
    SCAN_GRAD_ATOL,
    format_scan_benchmark,
    run_scan_benchmark,
)


def run() -> dict:
    return run_scan_benchmark(
        seq_len=64, batch=32, draws=8, num_filters=8, repeats=5, seed=0,
        train_epochs=5,
    )


def test_filter_scan(benchmark):
    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_scan_benchmark(record))
    solf = record["solf"]

    # The fused kernel must be a *pure* optimisation: same loss, same
    # gradients (to accumulation order) under identical draws.
    assert record["equivalent"], (
        f"fused/unfused diverged: |Δloss| = {solf['loss_delta']:.2e} "
        f"(tol {SCAN_EQUIVALENCE_ATOL:.0e}), max |Δgrad| = "
        f"{solf['max_abs_grad_delta']:.2e} (tol {SCAN_GRAD_ATOL:.0e})"
    )
    # Acceptance: ≥ 5× forward+backward at the acceptance workload.
    assert solf["speedup"] >= 5.0, (
        f"fused SO-LF speedup is only {solf['speedup']:.2f}x (need >= 5x)"
    )
    # Both phases must improve — the adjoint should not pay for the
    # forward's win.
    assert solf["fused_forward_s"] < solf["unfused_forward_s"]
    assert solf["fused_backward_s"] < solf["unfused_backward_s"]

    # End-to-end training must get faster too (diluted by shared
    # crossbar/ptanh/optimizer work, so the bar is lower) and must
    # follow the identical optimisation trajectory.
    training = record["training"]
    assert training["epoch_speedup"] > 1.0, (
        f"fused training epoch is not faster: {training['epoch_speedup']:.2f}x"
    )
    assert training["first_epoch_loss_delta"] <= SCAN_EQUIVALENCE_ATOL


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write the record as JSON")
    args = parser.parse_args()
    rec = run()
    print(format_scan_benchmark(rec))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump({"filter_scan": rec}, fh, indent=2)
        print(f"wrote {args.output}")
    assert rec["equivalent"]
    assert rec["solf"]["speedup"] >= 5.0
