"""Streaming-session throughput: chunked stateful inference vs one-shot.

Streams one long drifting sensor stream (T >> 64) through a
:class:`repro.core.StreamingSession` at several transport chunk sizes
and compares step throughput against the batched one-shot plan forward.
The session pays a fixed per-step cost (elementwise recurrence + one
``(1, in) @ (in, out)`` GEMM per layer) — that is exactly what buys the
bit-exact split-invariance contract — so the batched forward is
expected to be faster on throughput; the interesting numbers are the
per-step latency of the streaming path and how little the chunk size
matters to it.

Equivalence is enforced, not assumed: every chunked pass must be
bit-equal to the one-chunk session pass, and the session's final logits
must agree with the batched plan forward to float64 accumulation
tolerance.  No speedup assertion — the value of the streaming engine is
state carry, not throughput.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src python benchmarks/bench_streaming.py --output streaming_bench.json
"""

import argparse
import json
import time

import numpy as np

from repro.compile import compile_plan
from repro.core import AdaptPNC, StreamingSession
from repro.data import drift_stream

EQUIVALENCE_ATOL = 1e-12


def run(
    steps_target: int = 2048,
    chunk_sizes=(1, 16, 64, 256),
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    model = AdaptPNC(3, rng=np.random.default_rng(seed))
    plan = compile_plan(model)
    stream = drift_stream(
        "Slope",
        segments=max(2, steps_target // (64 * 8)),
        windows_per_segment=8,
        seed=seed,
    )
    x = stream.x
    steps = x.size

    # Oracle trajectory: the whole stream in one session call.
    oracle = StreamingSession(plan).process(x)

    rows = []
    equivalent = True
    max_abs_delta = 0.0
    for chunk in chunk_sizes:
        session = StreamingSession(plan)
        best = float("inf")
        for _ in range(repeats):
            session.reset()
            pieces = []
            t0 = time.perf_counter()
            for lo in range(0, steps, chunk):
                pieces.append(session.process(x[lo : lo + chunk]))
            best = min(best, time.perf_counter() - t0)
        trajectory = np.concatenate(pieces, axis=0)
        bit_equal = bool(np.array_equal(trajectory, oracle))
        equivalent &= bit_equal
        rows.append(
            {
                "chunk_size": int(chunk),
                "seconds": best,
                "steps_per_sec": steps / best,
                "us_per_step": best / steps * 1e6,
                "bit_equal_one_shot": bit_equal,
            }
        )

    # Batched reference: the plan forward over the full (1, T) series.
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        batched_logits = plan.forward(x[None])[0]
        best = min(best, time.perf_counter() - t0)
    max_abs_delta = float(np.max(np.abs(oracle[-1] - batched_logits)))
    equivalent &= max_abs_delta <= EQUIVALENCE_ATOL

    return {
        "streaming": {
            "model": plan.model_class,
            "steps": int(steps),
            "repeats": repeats,
            "rows": rows,
            "batched_forward_s": best,
            "batched_steps_per_sec": steps / best,
            "max_abs_logit_delta_vs_plan": max_abs_delta,
            "equivalence_atol": EQUIVALENCE_ATOL,
            "equivalent": bool(equivalent),
        }
    }


def test_streaming_throughput(benchmark):
    record = benchmark.pedantic(
        lambda: run(steps_target=512, chunk_sizes=(1, 64), repeats=1),
        rounds=1,
        iterations=1,
    )["streaming"]
    print(
        "\n"
        + "  ".join(
            f"chunk={row['chunk_size']}: {row['steps_per_sec']:.0f} steps/s"
            for row in record["rows"]
        )
        + f"  batched: {record['batched_steps_per_sec']:.0f} steps/s"
    )
    assert record["equivalent"], record
    assert all(row["bit_equal_one_shot"] for row in record["rows"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=2048, help="target stream length")
    parser.add_argument(
        "--chunk-sizes", type=int, nargs="+", default=[1, 16, 64, 256]
    )
    parser.add_argument("--repeats", type=int, default=3, help="timed repeats, min taken")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="write the record as JSON here")
    args = parser.parse_args()

    record = run(
        steps_target=args.steps,
        chunk_sizes=tuple(args.chunk_sizes),
        repeats=args.repeats,
        seed=args.seed,
    )["streaming"]
    print(f"{record['model']} over {record['steps']} steps:")
    for row in record["rows"]:
        marker = "bit-equal" if row["bit_equal_one_shot"] else "MISMATCH"
        print(
            f"  chunk {row['chunk_size']:>4}: {row['steps_per_sec']:9.0f} steps/s  "
            f"({row['us_per_step']:6.1f} us/step)  {marker}"
        )
    print(
        f"  batched  : {record['batched_steps_per_sec']:9.0f} steps/s  "
        f"(plan.forward one-shot)"
    )
    print(
        f"final-logit |delta| vs plan: {record['max_abs_logit_delta_vs_plan']:.2e} "
        f"(tolerance {record['equivalence_atol']:.0e}) — "
        + ("equivalent" if record["equivalent"] else "NOT equivalent")
    )
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump({"streaming_bench": record}, fh, indent=2)
        print(f"wrote {args.output}")
    return 0 if record["equivalent"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
