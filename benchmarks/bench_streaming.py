"""Streaming-session throughput: chunked stateful inference vs one-shot.

Streams one long drifting sensor stream (T >> 64) through a
:class:`repro.core.StreamingSession` at several transport chunk sizes
and compares step throughput against the batched one-shot plan forward.
The session pays a fixed per-step cost (elementwise recurrence + one
row-stable affine kernel per layer) — that is exactly what buys the
bit-exact split-invariance contract — so the batched forward is
expected to be faster on throughput; the interesting numbers are the
per-step latency of the streaming path and how little the chunk size
matters to it.

``--multi`` benchmarks the fleet engine instead: N concurrent streams
stepped per-session (N independent :class:`StreamingSession` loops —
what the serving tier did before the fleet scheduler) versus one
:class:`repro.core.MultiStreamSession` advancing all N rows per kernel
call, over ragged randomly-cut chunk schedules.  The aggregate-speedup
gate (≥3x at 32 streams) is skipped on single-core runners like the
other serving benches; every stream's trajectory must be bit-equal to
its single-stream oracle regardless.  Each ``--multi`` run appends a
compact entry to ``BENCH_streaming.json`` (same trajectory pattern as
``BENCH_tape.json``).

Equivalence is enforced, not assumed: every chunked pass must be
bit-equal to the one-chunk session pass, and the session's final logits
must agree with the batched plan forward to float64 accumulation
tolerance.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src python benchmarks/bench_streaming.py --multi --streams 32
    PYTHONPATH=src python benchmarks/bench_streaming.py --output streaming_bench.json
"""

import argparse
import json
import os
import pathlib
import time

import numpy as np

from repro.compile import compile_plan
from repro.core import AdaptPNC, MultiStreamSession, StreamingSession
from repro.data import drift_stream

EQUIVALENCE_ATOL = 1e-12

#: Aggregate fleet speedup the --multi gate demands at 32 streams.
MULTI_SPEEDUP_TARGET = 3.0

#: Fleet-speedup trajectory across bench runs — one compact entry
#: appended per ``--multi`` invocation (same pattern as BENCH_tape.json).
TRAJECTORY = pathlib.Path(__file__).resolve().parent.parent / "BENCH_streaming.json"


def run(
    steps_target: int = 2048,
    chunk_sizes=(1, 16, 64, 256),
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    model = AdaptPNC(3, rng=np.random.default_rng(seed))
    plan = compile_plan(model)
    stream = drift_stream(
        "Slope",
        segments=max(2, steps_target // (64 * 8)),
        windows_per_segment=8,
        seed=seed,
    )
    x = stream.x
    steps = x.size

    # Oracle trajectory: the whole stream in one session call.
    oracle = StreamingSession(plan).process(x)

    rows = []
    equivalent = True
    max_abs_delta = 0.0
    for chunk in chunk_sizes:
        session = StreamingSession(plan)
        best = float("inf")
        for _ in range(repeats):
            session.reset()
            pieces = []
            t0 = time.perf_counter()
            for lo in range(0, steps, chunk):
                pieces.append(session.process(x[lo : lo + chunk]))
            best = min(best, time.perf_counter() - t0)
        trajectory = np.concatenate(pieces, axis=0)
        bit_equal = bool(np.array_equal(trajectory, oracle))
        equivalent &= bit_equal
        rows.append(
            {
                "chunk_size": int(chunk),
                "seconds": best,
                "steps_per_sec": steps / best,
                "us_per_step": best / steps * 1e6,
                "bit_equal_one_shot": bit_equal,
            }
        )

    # Batched reference: the plan forward over the full (1, T) series.
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        batched_logits = plan.forward(x[None])[0]
        best = min(best, time.perf_counter() - t0)
    max_abs_delta = float(np.max(np.abs(oracle[-1] - batched_logits)))
    equivalent &= max_abs_delta <= EQUIVALENCE_ATOL

    return {
        "streaming": {
            "model": plan.model_class,
            "steps": int(steps),
            "repeats": repeats,
            "rows": rows,
            "batched_forward_s": best,
            "batched_steps_per_sec": steps / best,
            "max_abs_logit_delta_vs_plan": max_abs_delta,
            "equivalence_atol": EQUIVALENCE_ATOL,
            "equivalent": bool(equivalent),
        }
    }


def _ragged_schedule(rng, n_streams: int, steps: int, max_chunk: int):
    """Random per-stream chunk cut points: a list of rounds, each round
    a ``{stream: (lo, hi)}`` dict.  Streams advance at different rates
    and may sit a round out, so no two streams share cut points."""
    cursors = [0] * n_streams
    rounds = []
    while any(c < steps for c in cursors):
        spans = {}
        for s in range(n_streams):
            if cursors[s] >= steps:
                continue
            if rng.random() < 0.15 and len(rounds) > 0:
                continue  # this stream sits the round out
            size = int(rng.integers(1, max_chunk + 1))
            lo = cursors[s]
            hi = min(lo + size, steps)
            spans[s] = (lo, hi)
            cursors[s] = hi
        if spans:
            rounds.append(spans)
    return rounds


def run_multi(
    n_streams: int = 32,
    steps: int = 512,
    max_chunk: int = 16,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Fleet stepping vs per-session stepping over ragged schedules."""
    model = AdaptPNC(3, rng=np.random.default_rng(seed))
    plan = compile_plan(model)
    rng = np.random.default_rng(seed + 1)
    streams = [
        drift_stream(
            "Slope",
            segments=2,
            windows_per_segment=max(1, steps // (2 * 64)),
            seed=seed + 100 + s,
        ).x[:steps]
        for s in range(n_streams)
    ]
    steps = min(x.size for x in streams)
    streams = [x[:steps] for x in streams]
    schedule = _ragged_schedule(rng, n_streams, steps, max_chunk)

    # Oracle + per-session baseline timing: N independent sessions
    # stepped through the same ragged schedule.
    oracle = [np.empty((steps, plan.n_classes)) for _ in range(n_streams)]
    per_session_s = float("inf")
    for _ in range(repeats):
        sessions = [StreamingSession(plan) for _ in range(n_streams)]
        t0 = time.perf_counter()
        for spans in schedule:
            for s, (lo, hi) in spans.items():
                oracle[s][lo:hi] = sessions[s].process(streams[s][lo:hi])
        per_session_s = min(per_session_s, time.perf_counter() - t0)

    # Fleet: same schedule, one batched advance per round.
    fleet_out = [np.empty((steps, plan.n_classes)) for _ in range(n_streams)]
    fleet_s = float("inf")
    for _ in range(repeats):
        fleet = MultiStreamSession(plan, capacity=n_streams)
        rows = [fleet.open() for _ in range(n_streams)]
        t0 = time.perf_counter()
        for spans in schedule:
            chunks = {
                rows[s]: streams[s][lo:hi] for s, (lo, hi) in spans.items()
            }
            results = fleet.process_many(chunks)
            for s, (lo, hi) in spans.items():
                fleet_out[s][lo:hi] = results[rows[s]]
        fleet_s = min(fleet_s, time.perf_counter() - t0)

    bit_equal = all(
        np.array_equal(fleet_out[s], oracle[s]) for s in range(n_streams)
    )
    total_steps = n_streams * steps
    speedup = per_session_s / fleet_s
    return {
        "multi_stream": {
            "model": plan.model_class,
            "n_streams": int(n_streams),
            "steps_per_stream": int(steps),
            "rounds": len(schedule),
            "max_chunk": int(max_chunk),
            "repeats": int(repeats),
            "per_session_s": per_session_s,
            "per_session_steps_per_sec": total_steps / per_session_s,
            "fleet_s": fleet_s,
            "fleet_steps_per_sec": total_steps / fleet_s,
            "speedup": speedup,
            "speedup_target": MULTI_SPEEDUP_TARGET,
            "bit_equal_oracle": bool(bit_equal),
            "cpu_count": os.cpu_count(),
        }
    }


def record_trajectory(record: dict, path: pathlib.Path = TRAJECTORY) -> dict:
    """Append a compact trajectory entry for this ``--multi`` run."""
    multi = record["multi_stream"]
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "speedup": round(multi["speedup"], 3),
        "per_session_steps_per_sec": round(multi["per_session_steps_per_sec"], 1),
        "fleet_steps_per_sec": round(multi["fleet_steps_per_sec"], 1),
        "bit_equal_oracle": multi["bit_equal_oracle"],
        "workload": {
            "n_streams": multi["n_streams"],
            "steps_per_stream": multi["steps_per_stream"],
            "max_chunk": multi["max_chunk"],
            "rounds": multi["rounds"],
        },
    }
    entries = json.loads(path.read_text()) if path.exists() else []
    entries.append(entry)
    path.write_text(json.dumps(entries, indent=2) + "\n")
    return entry


def test_multi_stream_throughput(benchmark):
    record = benchmark.pedantic(
        lambda: run_multi(n_streams=8, steps=128, repeats=1),
        rounds=1,
        iterations=1,
    )["multi_stream"]
    print(
        f"\nfleet: {record['fleet_steps_per_sec']:.0f} steps/s  "
        f"per-session: {record['per_session_steps_per_sec']:.0f} steps/s  "
        f"speedup {record['speedup']:.2f}x"
    )
    assert record["bit_equal_oracle"], record


def test_streaming_throughput(benchmark):
    record = benchmark.pedantic(
        lambda: run(steps_target=512, chunk_sizes=(1, 64), repeats=1),
        rounds=1,
        iterations=1,
    )["streaming"]
    print(
        "\n"
        + "  ".join(
            f"chunk={row['chunk_size']}: {row['steps_per_sec']:.0f} steps/s"
            for row in record["rows"]
        )
        + f"  batched: {record['batched_steps_per_sec']:.0f} steps/s"
    )
    assert record["equivalent"], record
    assert all(row["bit_equal_one_shot"] for row in record["rows"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=2048, help="target stream length")
    parser.add_argument(
        "--chunk-sizes", type=int, nargs="+", default=[1, 16, 64, 256]
    )
    parser.add_argument("--repeats", type=int, default=3, help="timed repeats, min taken")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, help="write the record as JSON here")
    parser.add_argument(
        "--multi",
        action="store_true",
        help="benchmark the batched fleet engine vs per-session stepping",
    )
    parser.add_argument(
        "--streams", type=int, default=32, help="concurrent streams for --multi"
    )
    parser.add_argument(
        "--max-chunk", type=int, default=16, help="largest ragged chunk for --multi"
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=MULTI_SPEEDUP_TARGET,
        help="fail --multi below this aggregate speedup (skipped on 1 core; "
        "0 disables)",
    )
    args = parser.parse_args()

    if args.multi:
        record = run_multi(
            n_streams=args.streams,
            steps=args.steps if args.steps != 2048 else 512,
            max_chunk=args.max_chunk,
            repeats=args.repeats,
            seed=args.seed,
        )["multi_stream"]
        print(
            f"{record['model']}: {record['n_streams']} streams x "
            f"{record['steps_per_stream']} steps, {record['rounds']} ragged rounds"
        )
        print(
            f"  per-session: {record['per_session_steps_per_sec']:9.0f} steps/s  "
            f"({record['per_session_s'] * 1e3:7.1f} ms)"
        )
        print(
            f"  fleet      : {record['fleet_steps_per_sec']:9.0f} steps/s  "
            f"({record['fleet_s'] * 1e3:7.1f} ms)"
        )
        print(
            f"  speedup {record['speedup']:.2f}x — "
            + ("bit-equal oracle" if record["bit_equal_oracle"] else "MISMATCH")
        )
        entry = record_trajectory({"multi_stream": record})
        print(f"trajectory -> {TRAJECTORY.name}: {json.dumps(entry['workload'])}")
        if args.output is not None:
            with open(args.output, "w") as fh:
                json.dump({"multi_stream_bench": record}, fh, indent=2)
            print(f"wrote {args.output}")
        if not record["bit_equal_oracle"]:
            print("FAIL: fleet diverged from the single-stream oracle")
            return 1
        if args.assert_speedup and (os.cpu_count() or 1) < 2:
            print(
                f"speedup gate ({args.assert_speedup:.1f}x) skipped: single-core runner"
            )
        elif args.assert_speedup and record["speedup"] < args.assert_speedup:
            print(
                f"FAIL: speedup {record['speedup']:.2f}x below "
                f"{args.assert_speedup:.1f}x"
            )
            return 1
        return 0

    record = run(
        steps_target=args.steps,
        chunk_sizes=tuple(args.chunk_sizes),
        repeats=args.repeats,
        seed=args.seed,
    )["streaming"]
    print(f"{record['model']} over {record['steps']} steps:")
    for row in record["rows"]:
        marker = "bit-equal" if row["bit_equal_one_shot"] else "MISMATCH"
        print(
            f"  chunk {row['chunk_size']:>4}: {row['steps_per_sec']:9.0f} steps/s  "
            f"({row['us_per_step']:6.1f} us/step)  {marker}"
        )
    print(
        f"  batched  : {record['batched_steps_per_sec']:9.0f} steps/s  "
        f"(plan.forward one-shot)"
    )
    print(
        f"final-logit |delta| vs plan: {record['max_abs_logit_delta_vs_plan']:.2e} "
        f"(tolerance {record['equivalence_atol']:.0e}) — "
        + ("equivalent" if record["equivalent"] else "NOT equivalent")
    )
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump({"streaming_bench": record}, fh, indent=2)
        print(f"wrote {args.output}")
    return 0 if record["equivalent"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
