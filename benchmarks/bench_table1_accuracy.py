"""Table I — accuracy of Elman RNN / baseline pTPNC / ADAPT-pNC.

Regenerates the paper's headline table: per-dataset accuracy under
±10 % component variation on perturbed test inputs, with the top-k
seed-selection rule.  The benchmark times the full pipeline and checks
the expected ordering (ADAPT-pNC wins on average).
"""

from repro.core import format_table1, run_table1


def test_table1_accuracy(benchmark, config):
    table = benchmark.pedantic(run_table1, args=(config,), rounds=1, iterations=1)
    print("\n" + format_table1(table))

    average = table["Average"]
    # The paper's ordering under variation+perturbation: proposed wins.
    assert average["adapt"].mean >= average["ptpnc"].mean - 0.05
    assert 0.0 <= average["adapt"].mean <= 1.0
