"""Micro-batching throughput: batched service vs one-request-per-forward.

Drives one :class:`repro.serve.MicroBatchService` with a thread-pool of
closed-loop clients twice — once with coalescing disabled
(``window_s=0, max_batch=1``: every request runs its own plan forward)
and once with the micro-batching window on — and reports QPS, latency
percentiles and the achieved batch-size distribution of each run.  The
forward amortises almost perfectly over the batch dimension (one GEMM
per layer regardless of rows), so the batched configuration should
clear ~2x throughput wherever more than one client can actually run
concurrently.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --assert-speedup 2.0

``--assert-speedup`` exits non-zero when the batched run is not at
least that many times faster; on single-core runners
(``os.cpu_count() == 1``) the assertion is skipped because concurrent
clients cannot physically overlap there.  ``--run-root`` records both
runs' ``serve.*`` telemetry for ``python -m repro report``.
"""

import argparse
import json
import os
import threading
import time

import numpy as np

from repro.core import PTPNC
from repro.serve import MicroBatchService, ServeOptions
from repro.telemetry import Run


def make_inputs(n_requests: int, steps: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        np.clip(np.cumsum(rng.normal(0.0, 0.3, steps)), -1.0, 1.0)
        for _ in range(n_requests)
    ]


def drive(service, inputs, clients: int, timeout_s: float = 120.0) -> dict:
    """Fire ``inputs`` at the service from ``clients`` closed-loop
    threads; returns wall-clock, QPS and the service's own stats."""
    latencies = []
    errors = []
    lock = threading.Lock()
    cursor = iter(range(len(inputs)))

    def worker():
        while True:
            with lock:
                i = next(cursor, None)
            if i is None:
                return
            t0 = time.perf_counter()
            try:
                service.predict("bench", inputs[i], timeout=timeout_s)
            except Exception as exc:  # noqa: BLE001 — recorded, not raised
                with lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
                continue
            with lock:
                latencies.append(time.perf_counter() - t0)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    t0 = time.perf_counter()
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    wall_s = time.perf_counter() - t0

    from repro.serve import percentile

    snapshot = service.stats.snapshot()
    return {
        "requests": len(latencies),
        "errors": errors,
        "wall_s": wall_s,
        "qps": len(latencies) / wall_s if wall_s > 0 else 0.0,
        "latency_ms": {
            "p50": percentile(latencies, 50) * 1e3,
            "p99": percentile(latencies, 99) * 1e3,
        },
        "mean_batch_size": snapshot["mean_batch_size"],
        "batch_size_histogram": snapshot["batch_size_histogram"],
    }


def run(
    n_requests: int = 200,
    clients: int = 16,
    steps: int = 48,
    window_ms: float = 5.0,
    max_batch: int = 32,
    run_root=None,
) -> dict:
    model = PTPNC(2, rng=np.random.default_rng(0))
    inputs = make_inputs(n_requests, steps)

    def one_config(tag, options):
        ctx = Run(root=run_root, name=f"serve-bench-{tag}") if run_root else None
        try:
            if ctx is not None:
                ctx.__enter__()
            with MicroBatchService(options) as service:
                service.register("bench", model)
                service.predict("bench", inputs[0])  # warm the plan + JIT paths
                record = drive(service, inputs, clients)
                service.emit_stats()
        finally:
            if ctx is not None:
                ctx.__exit__(None, None, None)
        return record

    unbatched = one_config(
        "unbatched",
        ServeOptions(window_s=0.0, max_batch=1, queue_size=max(128, n_requests)),
    )
    batched = one_config(
        "batched",
        ServeOptions(
            window_s=window_ms / 1e3,
            max_batch=max_batch,
            queue_size=max(128, n_requests),
        ),
    )

    return {
        "n_requests": n_requests,
        "clients": clients,
        "steps": steps,
        "window_ms": window_ms,
        "max_batch": max_batch,
        "cpu_count": os.cpu_count() or 1,
        "unbatched": unbatched,
        "batched": batched,
        "speedup": (
            batched["qps"] / unbatched["qps"] if unbatched["qps"] > 0 else float("inf")
        ),
    }


def test_micro_batching_throughput(benchmark):
    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nunbatched {record['unbatched']['qps']:.0f} qps  "
        f"batched {record['batched']['qps']:.0f} qps  "
        f"speedup {record['speedup']:.2f}x  "
        f"mean batch {record['batched']['mean_batch_size']:.1f}"
    )
    assert not record["unbatched"]["errors"], record["unbatched"]["errors"]
    assert not record["batched"]["errors"], record["batched"]["errors"]
    assert record["batched"]["mean_batch_size"] > 1.0
    if record["cpu_count"] >= 2:
        assert record["speedup"] >= 1.5, f"only {record['speedup']:.2f}x"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--steps", type=int, default=48)
    parser.add_argument("--window-ms", type=float, default=5.0)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless batched QPS >= X times unbatched (skipped on 1 core)",
    )
    parser.add_argument("--p99-budget-ms", type=float, default=None,
                        help="fail when the batched p99 latency exceeds this")
    parser.add_argument("--run-root", default=None,
                        help="record serve.* telemetry runs under this directory")
    parser.add_argument("--output", default=None, help="write the record as JSON here")
    args = parser.parse_args()

    record = run(
        n_requests=args.requests,
        clients=args.clients,
        steps=args.steps,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        run_root=args.run_root,
    )
    for tag in ("unbatched", "batched"):
        side = record[tag]
        print(
            f"{tag:>9}: {side['qps']:8.0f} qps  "
            f"p50 {side['latency_ms']['p50']:6.2f} ms  "
            f"p99 {side['latency_ms']['p99']:6.2f} ms  "
            f"mean batch {side['mean_batch_size']:.1f}"
        )
    print(
        f"speedup {record['speedup']:.2f}x  "
        f"(clients={record['clients']}, cores={record['cpu_count']})"
    )
    if args.output is not None:
        with open(args.output, "w") as fh:
            json.dump(record, fh, indent=2)
        print(f"wrote {args.output}")

    failed = False
    for tag in ("unbatched", "batched"):
        if record[tag]["errors"]:
            print(f"FAIL: {tag} run had errors: {record[tag]['errors'][:3]}")
            failed = True
    if args.p99_budget_ms is not None:
        p99 = record["batched"]["latency_ms"]["p99"]
        if p99 > args.p99_budget_ms:
            print(f"FAIL: batched p99 {p99:.2f} ms > budget {args.p99_budget_ms} ms")
            failed = True
        else:
            print(f"batched p99 {p99:.2f} ms within {args.p99_budget_ms} ms budget")
    if args.assert_speedup is not None:
        if record["cpu_count"] < 2:
            print(
                f"single-core machine: skipping the >= {args.assert_speedup:.1f}x "
                "speedup assertion (clients cannot physically overlap)"
            )
        elif record["speedup"] < args.assert_speedup:
            print(
                f"FAIL: speedup {record['speedup']:.2f}x "
                f"< required {args.assert_speedup:.1f}x"
            )
            failed = True
        else:
            print(f"speedup {record['speedup']:.2f}x >= {args.assert_speedup:.1f}x")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
