"""Table III — hardware costs: device counts and power.

Regenerates the per-dataset device inventory (transistors, resistors,
capacitors) and static power for the baseline pTPNC vs the proposed
ADAPT-pNC, including the dataset-average row.  The expected *shape*:
proposed needs ≈1.9× the devices at ≈91 % lower power.
"""

import numpy as np

from repro.core import run_table3
from repro.hw import format_hardware_table


def test_table3_hardware(benchmark, config):
    rows = benchmark.pedantic(run_table3, args=(config,), rounds=1, iterations=1)
    print("\n" + format_hardware_table(rows))

    ratio = float(np.mean([r.device_ratio for r in rows]))
    reduction = float(np.mean([r.power_reduction for r in rows]))
    assert 1.3 < ratio < 2.6, f"device ratio {ratio:.2f} outside the paper band"
    assert reduction > 0.75, f"power reduction {reduction:.0%} below the paper band"
