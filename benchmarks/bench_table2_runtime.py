"""Table II — average runtime comparison.

The paper reports Elman ≪ pTPNC < ADAPT-pNC (2.3 ms / 0.23 s / 2.5 s on
the authors' machine).  We time one full-batch training step per model,
with each model's own training policy: ADAPT-pNC pays for Monte-Carlo
variation sampling and the augmented (2×) training set.
"""

from repro.core import run_table2
from repro.utils import render_table


def test_table2_runtime(benchmark, config):
    timings = benchmark.pedantic(
        run_table2, args=(config,), kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    rows = [[k, f"{v * 1e3:.1f} ms"] for k, v in timings.items()]
    print("\n" + render_table(["Model", "Runtime / training step"], rows))

    # The paper's ordering: the proposed model is the most expensive to
    # train; the printed baseline sits between.
    assert timings["adapt"] > timings["ptpnc"]
    assert all(t > 0 for t in timings.values())
