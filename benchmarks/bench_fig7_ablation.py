"""Fig. 7 — ablation of VA / AT / SO-LF.

Trains the five configurations (baseline, +VA, +AT, +SO-LF, combined)
and reports mean accuracy on clean and perturbed test data under ±10 %
component variation.  The expected shape: every ingredient helps over
the baseline; the combination is at or near the top with the lowest
variability.
"""

from repro.core import format_fig7, run_fig7_ablation


def test_fig7_ablation(benchmark, config):
    results = benchmark.pedantic(run_fig7_ablation, args=(config,), rounds=1, iterations=1)
    print("\n" + format_fig7(results))

    baseline = results["baseline"]["perturbed"].mean
    combined = results["va_so_at"]["perturbed"].mean
    assert combined >= baseline - 0.05, (
        f"combined config ({combined:.3f}) should not trail the baseline ({baseline:.3f})"
    )
    for modes in results.values():
        for res in modes.values():
            assert 0.0 <= res.mean <= 1.0
