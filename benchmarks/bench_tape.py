"""Tape-compiler speedup against the interpreted-graph oracle.

The autograd engine runs graphs through one of two backends
(:mod:`repro.autograd.tape`): ``interpreted`` rebuilds the closure
graph every step (the bit-equal oracle), ``tape`` traces the training
objective once per signature and replays it as a flat compiled loop
over preallocated arena buffers.  This benchmark runs an end-to-end
``Trainer.fit`` under both backends and asserts:

* ≥ 1.5× end-to-end ``Trainer.fit`` epoch speedup on the flagship
  deterministic float32 workload (graph-construction-bound: small
  batch, short sequences, one draw);
* the float64 variation-aware oracle run is **bit-equal** between
  backends: identical train/val losses at every epoch (deltas exactly
  0.0) with zero interpreter fallbacks.
"""

import json
import pathlib
import time

from repro.core import format_tape_benchmark, run_tape_benchmark

#: Acceptance floor for the tape-over-interpreted epoch speedup on the
#: flagship workload (measured ~2x on an idle machine; the floor leaves
#: headroom for CI-runner noise).
SPEEDUP_FLOOR = 1.5

#: Speedup trajectory across bench runs — one compact entry appended per
#: ``__main__`` invocation, so regressions show up as a time series.
TRAJECTORY = pathlib.Path(__file__).resolve().parent.parent / "BENCH_tape.json"


def run() -> dict:
    return run_tape_benchmark(
        batch=16, seq_len=8, n_classes=3, epochs=150, repeats=5, seed=0,
        precision="float32", oracle_epochs=10, oracle_mc_samples=2,
    )


def _check(record: dict) -> None:
    tape = record["tape_compiler"]
    oracle = tape["oracle"]
    # The interpreted float64 path is the oracle: the tape must replay
    # it bit-for-bit, without ever falling back to the interpreter.
    assert oracle["bit_equal"], (
        f"tape diverged from the interpreted float64 oracle: "
        f"max |Δtrain| = {oracle['max_abs_train_loss_delta']:.2e}, "
        f"max |Δval| = {oracle['max_abs_val_loss_delta']:.2e}, "
        f"fallbacks = {oracle['fallbacks']}"
    )
    assert tape["equivalent"], "tape-compiler equivalence verdict is FAILED"
    # Acceptance: ≥ 1.5× Trainer.fit epoch wall-clock on the flagship
    # deterministic float32 workload.
    assert tape["speedup"] >= SPEEDUP_FLOOR, (
        f"tape epoch speedup is only {tape['speedup']:.2f}x "
        f"(need >= {SPEEDUP_FLOOR}x)"
    )
    # The tape must actually compile and fuse on this workload — a
    # trivially-empty cache would make the speedup meaningless.
    counters = tape["counters"]
    assert counters["traces"] >= 1, "no tapes were compiled"
    assert counters["cache_hits"] > counters["cache_misses"], (
        "tape cache mostly missed: the signature must be stable across epochs"
    )
    assert counters["fused_ops"] >= 1, "peephole fusion never fired"


def record_trajectory(record: dict, path: pathlib.Path = TRAJECTORY) -> dict:
    """Append a compact trajectory entry for this run to ``path``."""
    tape = record["tape_compiler"]
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "speedup": round(tape["speedup"], 3),
        "interpreted_epoch_s": tape["interpreted_epoch_s"],
        "tape_epoch_s": tape["tape_epoch_s"],
        "equivalent": tape["equivalent"],
        "fallbacks": tape["oracle"]["fallbacks"],
        "fused_ops": tape["counters"]["fused_ops"],
        "workload": {
            "batch": tape["batch"],
            "seq_len": tape["seq_len"],
            "epochs": tape["epochs"],
            "precision": tape["precision"],
        },
    }
    entries = json.loads(path.read_text()) if path.exists() else []
    entries.append(entry)
    path.write_text(json.dumps(entries, indent=2) + "\n")
    return entry


def test_tape(benchmark):
    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_tape_benchmark(record))
    _check(record)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write the record as JSON")
    args = parser.parse_args()
    rec = run()
    print(format_tape_benchmark(rec))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(rec, fh, indent=2)
        print(f"wrote {args.output}")
    entry = record_trajectory(rec)
    print(f"appended speedup {entry['speedup']}x to {TRAJECTORY.name}")
    _check(rec)
