"""Extension — process-corner sign-off of a variation-aware design.

Complements the Monte-Carlo robustness numbers with deterministic
corner analysis (TT/SS/FF/SF/FS): the designer's question is whether a
systematically slow or fast print run still classifies.  Expected
shape: the VA-trained ADAPT-pNC's worst corner stays within a modest
margin of its typical corner.
"""

import numpy as np

from repro.analysis import corner_analysis
from repro.augment import default_config
from repro.core import AdaptPNC, Trainer, TrainingConfig
from repro.data import load_dataset
from repro.utils import render_table


def run_corners(dataset_name: str = "Slope"):
    dataset = load_dataset(dataset_name, n_samples=90, seed=0)
    model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    Trainer(
        model,
        TrainingConfig.ci(),
        variation_aware=True,
        augmentation=default_config(dataset_name),
        seed=0,
    ).fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
    return corner_analysis(model, dataset.x_test, dataset.y_test, delta=0.10)


def test_corner_signoff(benchmark):
    report = benchmark.pedantic(run_corners, rounds=1, iterations=1)
    rows = [[corner, f"{acc:.3f}"] for corner, acc in report.accuracy.items()]
    print("\n" + render_table(["Corner", "Accuracy"], rows))
    print(f"worst corner: {report.worst_corner()}, spread: {report.spread():.3f}")

    assert report.accuracy["TT"] >= 0.5  # the typical corner must work
    assert report.spread() < 0.6  # corners bounded, no total collapse
