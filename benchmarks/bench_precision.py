"""Precision-policy speedups against the float64 oracle.

The engine computes in the process-level precision policy
(:mod:`repro.autograd.precision`): ``float64`` is the bit-equal
reference path, ``float32`` halves every array and ``mixed`` adds
float64 master weights inside AdamW (AMP-style).  This benchmark runs
the fused SO-LF kernel and an end-to-end variation-aware + augmented
``Trainer.fit`` under each policy and asserts:

* ≥ 1.5× fused-scan forward+backward speedup at float32 (and mixed,
  whose compute path is identical) over the float64 oracle;
* ≥ 1.5× end-to-end ``Trainer.fit`` epoch speedup at float32;
* the float64 oracle is bit-equal across reruns (deltas exactly 0);
* float32/mixed losses agree with the oracle to rtol 1e-4 and the
  post-training Monte-Carlo accuracy within 0.5 pp.
"""

from repro.core import (
    DTYPE_ACCURACY_TOL_PP,
    DTYPE_LOSS_RTOL,
    format_dtype_benchmark,
    run_dtype_benchmark,
)

#: Acceptance floor for the float32-over-float64 speedups (both the
#: fused SO-LF kernel and the end-to-end training epoch).
SPEEDUP_FLOOR = 1.5


def run() -> dict:
    return run_dtype_benchmark(
        seq_len=96, batch=48, draws=12, num_filters=8, repeats=5, seed=0,
        train_epochs=3, train_samples=128, train_seq_len=192,
    )


def _check(record: dict) -> None:
    solf = record["solf"]
    training = record["training"]
    assert record["equivalent"], (
        f"precision policies diverged beyond tolerance "
        f"(loss rtol {DTYPE_LOSS_RTOL:.0e}, "
        f"accuracy tol {DTYPE_ACCURACY_TOL_PP} pp)"
    )
    # The float64 policy is the oracle: reruns must be bit-equal.
    assert record["oracle"]["bit_equal"], (
        f"float64 oracle rerun diverged: |Δloss| = "
        f"{record['oracle']['loss_delta']:.2e}"
    )
    # Acceptance: ≥ 1.5× fused-scan fwd+bwd at float32.
    assert solf["speedup_float32"] >= SPEEDUP_FLOOR, (
        f"float32 SO-LF speedup is only {solf['speedup_float32']:.2f}x "
        f"(need >= {SPEEDUP_FLOOR}x)"
    )
    assert solf["speedup_mixed"] >= SPEEDUP_FLOOR, (
        f"mixed SO-LF speedup is only {solf['speedup_mixed']:.2f}x "
        f"(need >= {SPEEDUP_FLOOR}x)"
    )
    # Acceptance: ≥ 1.5× end-to-end Trainer.fit epoch at float32.
    assert training["epoch_speedup_float32"] >= SPEEDUP_FLOOR, (
        f"float32 training epoch speedup is only "
        f"{training['epoch_speedup_float32']:.2f}x (need >= {SPEEDUP_FLOOR}x)"
    )
    # Mixed pays for master-weight upkeep in the optimizer, so its bar
    # is "faster than the oracle", not the full kernel factor.
    assert training["epoch_speedup_mixed"] > 1.0, (
        f"mixed training epoch is not faster: "
        f"{training['epoch_speedup_mixed']:.2f}x"
    )
    # Paper-protocol accuracy must survive the precision cut.
    assert training["accuracy_delta_pp_float32"] <= DTYPE_ACCURACY_TOL_PP
    assert training["accuracy_delta_pp_mixed"] <= DTYPE_ACCURACY_TOL_PP


def test_precision(benchmark):
    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_dtype_benchmark(record))
    _check(record)


if __name__ == "__main__":
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write the record as JSON")
    args = parser.parse_args()
    rec = run()
    print(format_dtype_benchmark(rec))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump({"precision": rec}, fh, indent=2)
        print(f"wrote {args.output}")
    _check(rec)
