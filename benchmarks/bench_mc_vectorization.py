"""Sequential-vs-batched Monte-Carlo variation-engine throughput.

The variation-aware objective (Eq. 13) is a Monte-Carlo expectation
over component variations ε, coupling factors μ and initial voltages
V₀.  The batched engine evaluates every draw in one vectorized
``(draws, batch, time, features)`` forward; this benchmark measures the
resulting speedup over the sequential per-draw oracle and asserts the
two backends remain numerically equivalent (they sample bit-identical
variation values; losses must agree to 1e-8).

Acceptance target: ≥ 3× throughput at mc_samples ≥ 8 on the CI config.
"""

import numpy as np

from repro.core import EQUIVALENCE_ATOL, format_mc_benchmark, run_mc_benchmark

DRAWS = (2, 4, 8)


def run() -> dict:
    # n_samples=24 keeps the step overhead-dominated — the regime the
    # vectorized engine targets (full-batch CI-scale training); larger
    # batches shift time into numpy GEMMs, which both backends share.
    return run_mc_benchmark(draws_list=DRAWS, n_samples=24, seq_len=32, repeats=5, seed=0)


def test_mc_vectorization(benchmark):
    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_mc_benchmark(record))

    # Backends must agree on the objective under a shared seed.
    assert record["equivalent"], (
        f"batched/sequential losses diverged: {record['max_abs_loss_delta']:.2e} "
        f"> {EQUIVALENCE_ATOL:.0e}"
    )
    # Speedup must grow with the draw count and clear 3x at >= 8 draws.
    by_draws = {row["draws"]: row for row in record["rows"]}
    assert by_draws[8]["speedup"] >= 3.0, (
        f"batched MC speedup at 8 draws is only {by_draws[8]['speedup']:.2f}x"
    )
    assert all(row["batched_draws_per_sec"] > 0 for row in record["rows"])
    # More draws should amortise better, not worse.
    assert by_draws[8]["speedup"] >= by_draws[2]["speedup"] * 0.8


if __name__ == "__main__":
    rec = run()
    print(format_mc_benchmark(rec))
    assert rec["equivalent"]
