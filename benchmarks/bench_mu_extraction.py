"""Sec. III-2 — coupling-factor µ extraction via circuit simulation.

The paper determines µ ∈ [1, 1.3] "through SPICE simulations using the
printed PDK".  This benchmark repeats the study with the in-repo MNA
engine over printable component draws and checks the band.
"""

from repro.core import run_mu_extraction
from repro.utils import render_table


def test_mu_extraction(benchmark):
    result = benchmark.pedantic(
        run_mu_extraction, kwargs={"samples": 10}, rounds=1, iterations=1
    )
    rows = [[k, f"{v:.3f}"] for k, v in result.items()]
    print("\n" + render_table(["Statistic", "Value"], rows))

    assert result["mu_min"] >= 1.0
    assert result["mu_max"] <= 1.3
    assert result["within_paper_band"] == 1.0
