"""Extension — physical ptanh characterisation (Sec. II-B).

Times the circuit-level derivation of η from component values
q^A = [R₁, R₂, T₁, T₂] (Newton DC sweep + curve fit) and checks that
the two-stage EGT cascade really is tanh-like across the printable
design space.
"""

import numpy as np

from repro.circuits import derive_eta
from repro.utils import render_table


def run_characterisation():
    designs = {
        "r=5k": dict(r1=5e3, r2=5e3),
        "r=20k": dict(r1=20e3, r2=20e3),
        "r=100k": dict(r1=100e3, r2=100e3),
    }
    return {label: derive_eta(points=40, **kwargs) for label, kwargs in designs.items()}


def test_ptanh_physical(benchmark):
    fits = benchmark.pedantic(run_characterisation, rounds=1, iterations=1)
    rows = [
        [label, f"{f.eta2:.3f}", f"{f.eta4:.2f}", f"{f.rms_error*1e3:.1f} mV"]
        for label, f in fits.items()
    ]
    print("\n" + render_table(["Design", "η2 (swing)", "η4 (gain)", "fit RMS"], rows))

    for label, fit in fits.items():
        assert fit.rms_error < 0.02, f"{label}: transfer is not tanh-like"
    # Stage gain must grow with load resistance.
    assert fits["r=100k"].eta4 > fits["r=5k"].eta4
