"""Extension — accuracy vs printable-grid resolution.

Printers realise discrete component values; this benchmark snaps a
trained ADAPT-pNC to E3/E6/E12/E24-style grids and measures the
accuracy cost of manufacturability.  Expected shape: coarse grids cost
accuracy, E12 (10 % steps — comparable to the process variation the
model was trained against) is nearly free.
"""

import numpy as np

from repro.augment import default_config
from repro.circuits import quantize_model
from repro.core import AdaptPNC, Trainer, TrainingConfig, evaluate_under_variation
from repro.data import load_dataset
from repro.utils import render_table

GRIDS = (3, 6, 12, 24)


def run_quantization(dataset_name: str = "Slope"):
    dataset = load_dataset(dataset_name, n_samples=90, seed=0)
    model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    Trainer(
        model,
        TrainingConfig.ci(),
        variation_aware=True,
        augmentation=default_config(dataset_name),
        seed=0,
    ).fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
    pristine = model.state_dict()

    results = {}
    results["continuous"] = evaluate_under_variation(
        model, dataset.x_test, dataset.y_test, delta=0.10, mc_samples=5, seed=0
    ).mean
    for grid in GRIDS:
        model.load_state_dict(pristine)
        report = quantize_model(model, values_per_decade=grid)
        acc = evaluate_under_variation(
            model, dataset.x_test, dataset.y_test, delta=0.10, mc_samples=5, seed=0
        ).mean
        results[f"E-style {grid}/decade"] = acc
    model.load_state_dict(pristine)
    return results


def test_quantization_cost(benchmark):
    results = benchmark.pedantic(run_quantization, rounds=1, iterations=1)
    rows = [[grid, f"{acc:.3f}"] for grid, acc in results.items()]
    print("\n" + render_table(["Component grid", "Robust accuracy"], rows))

    # A 10%-step grid must be nearly free for a model trained under
    # 10% variation.
    assert results["E-style 12/decade"] >= results["continuous"] - 0.1
    # The finest grid cannot be worse than the coarsest by a margin.
    assert results["E-style 24/decade"] >= results["E-style 3/decade"] - 0.1
