#!/usr/bin/env python3
"""Docs-consistency checker: generated blocks in the markdown docs.

The user-facing docs quote CLI ``--help`` output, the
:class:`~repro.core.TrainingConfig` field list, and the telemetry
event-kind registry.  Quoted-by-hand copies drift the moment a flag is
renamed, so those code blocks are *generated*: each one is fenced by

.. code-block:: markdown

    <!-- generated: cli-help runs -->
    ```text
    ...regenerated content...
    ```
    <!-- end generated -->

and this script re-derives the content from the code (``argparse`` help
with a pinned 80-column width, ``dataclasses.fields``,
``repro.telemetry.EVENT_KINDS``) and diffs it against the docs.

Usage::

    python scripts/check_docs.py          # exit 1 + unified diff on drift
    python scripts/check_docs.py --fix    # rewrite the blocks in place

CI runs the check mode on every push (see ``.github/workflows/ci.yml``);
``tests/test_docs_consistency.py`` runs it from pytest and demonstrates
that a renamed CLI flag makes it fail.

Block specs
-----------
``cli-help [subcommand...]``
    ``python -m repro [subcommand ...] --help`` (80 columns).
``training-config``
    One ``name: type = default`` line per ``TrainingConfig`` field.
``event-kinds``
    The telemetry schema version and the event kinds the library emits.
``campaign-schema [table...]``
    The ``CREATE TABLE`` DDL of the SQLite campaign store
    (``repro.parallel.store.SCHEMA``) — all tables, or the named ones.
``campaign-query <name>``
    One worked example from ``repro.parallel.store.EXAMPLE_QUERIES``
    (the same statements ``python -m repro query --example`` runs).
"""

from __future__ import annotations

import argparse
import difflib
import os
import pathlib
import re
import sys
from typing import Callable, Dict, List

# Pin the help-text wrap width BEFORE argparse formats anything:
# argparse sizes its HelpFormatter from shutil.get_terminal_size(),
# which honours the COLUMNS environment variable.
os.environ["COLUMNS"] = "80"

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Documents scanned for generated blocks (relative to the repo root).
DOC_FILES = (
    "README.md",
    "docs/TUTORIAL.md",
    "docs/OBSERVABILITY.md",
    "docs/SERVING.md",
    "docs/ARCHITECTURE.md",
    "docs/CAMPAIGNS.md",
    "EXPERIMENTS.md",
)

BLOCK_RE = re.compile(
    r"<!-- generated: (?P<spec>[^>]+?) -->\n"
    r"```text\n"
    r"(?P<body>.*?)"
    r"```\n"
    r"<!-- end generated -->",
    re.DOTALL,
)


def generate_cli_help(*subcommands: str) -> str:
    """``python -m repro <subcommands...> --help``, deterministic width."""
    from repro.cli import build_parser

    parser: argparse.ArgumentParser = build_parser()
    for name in subcommands:
        subactions = [
            a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
        ]
        if not subactions or name not in subactions[0].choices:
            raise KeyError(f"no such CLI subcommand: {' '.join(subcommands)}")
        parser = subactions[0].choices[name]
    return parser.format_help()


def generate_training_config() -> str:
    """One ``name: type = default`` line per ``TrainingConfig`` field."""
    import dataclasses

    from repro.core import TrainingConfig

    lines = []
    for f in dataclasses.fields(TrainingConfig):
        type_name = f.type if isinstance(f.type, str) else f.type.__name__
        lines.append(f"{f.name}: {type_name} = {f.default!r}")
    return "\n".join(lines) + "\n"


def generate_event_kinds() -> str:
    """Telemetry schema version + the event kinds the library emits."""
    from repro.telemetry import EVENT_KINDS, SCHEMA_VERSION

    lines = [f"schema version: {SCHEMA_VERSION}"]
    lines += [f"- {kind}" for kind in EVENT_KINDS]
    return "\n".join(lines) + "\n"


def generate_campaign_schema(*tables: str) -> str:
    """``CREATE TABLE`` DDL of the SQLite campaign store, verbatim."""
    from repro.parallel.store import SCHEMA

    names = tables or tuple(SCHEMA)
    for name in names:
        if name not in SCHEMA:
            raise KeyError(
                f"no such campaign-store table: {name} (known: {', '.join(SCHEMA)})"
            )
    return "\n\n".join(SCHEMA[name] + ";" for name in names) + "\n"


def generate_campaign_query(name: str) -> str:
    """One worked example query from ``EXAMPLE_QUERIES``, verbatim."""
    from repro.parallel.store import EXAMPLE_QUERIES

    if name not in EXAMPLE_QUERIES:
        raise KeyError(
            f"no such example query: {name} (known: {', '.join(EXAMPLE_QUERIES)})"
        )
    return EXAMPLE_QUERIES[name] + "\n"


GENERATORS: Dict[str, Callable[..., str]] = {
    "cli-help": generate_cli_help,
    "training-config": generate_training_config,
    "event-kinds": generate_event_kinds,
    "campaign-schema": generate_campaign_schema,
    "campaign-query": generate_campaign_query,
}


def expected_body(spec: str) -> str:
    """Regenerate the content a ``<!-- generated: spec -->`` block must hold."""
    kind, *rest = spec.split()
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise KeyError(
            f"unknown generated-block kind {kind!r} "
            f"(known: {', '.join(sorted(GENERATORS))})"
        ) from None
    return generator(*rest)


def process_doc(path: pathlib.Path, fix: bool) -> List[str]:
    """Check (or rewrite) one document; return drift descriptions."""
    text = path.read_text(encoding="utf-8")
    problems: List[str] = []

    def replace(match: re.Match) -> str:
        spec = match.group("spec").strip()
        actual = match.group("body")
        expected = expected_body(spec)
        if actual != expected:
            diff = difflib.unified_diff(
                actual.splitlines(keepends=True),
                expected.splitlines(keepends=True),
                fromfile=f"{path}: {spec} (documented)",
                tofile=f"{path}: {spec} (from code)",
            )
            problems.append("".join(diff))
        return (
            f"<!-- generated: {spec} -->\n```text\n{expected}```\n<!-- end generated -->"
        )

    fixed = BLOCK_RE.sub(replace, text)
    if fix and fixed != text:
        path.write_text(fixed, encoding="utf-8")
    return problems


def main(argv: List[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument(
        "--fix", action="store_true", help="rewrite drifted blocks in place"
    )
    cli.add_argument(
        "docs",
        nargs="*",
        default=None,
        help=f"documents to check (default: {' '.join(DOC_FILES)})",
    )
    args = cli.parse_args(argv)

    doc_paths = [pathlib.Path(d) for d in args.docs] if args.docs else [
        REPO_ROOT / name for name in DOC_FILES
    ]

    missing = [path for path in doc_paths if not path.exists()]
    for path in missing:
        print(f"check_docs: {path}: document not found")
    if missing:
        return 1

    n_blocks = 0
    problems: List[str] = []
    for path in doc_paths:
        n_blocks += len(BLOCK_RE.findall(path.read_text(encoding="utf-8")))
        problems.extend(process_doc(path, fix=args.fix))

    if n_blocks == 0:
        print("check_docs: no generated blocks found — markers broken?")
        return 1
    if problems:
        verb = "rewrote" if args.fix else "found"
        for problem in problems:
            sys.stdout.write(problem + "\n")
        print(f"check_docs: {verb} {len(problems)} drifted block(s) of {n_blocks}")
        return 0 if args.fix else 1
    print(f"check_docs: {n_blocks} generated block(s) match the code")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
