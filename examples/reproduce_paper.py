"""Regenerate the paper's tables and figures from the command line.

    python examples/reproduce_paper.py --scale smoke            # everything, fast
    python examples/reproduce_paper.py --scale ci --table 1     # Table I, minutes
    python examples/reproduce_paper.py --scale paper --table 1  # full protocol (hours)
    python examples/reproduce_paper.py --figure 7               # Fig. 7 ablation

Scales: ``smoke`` (seconds per artefact, 3 datasets, 1 seed), ``ci``
(minutes, all 15 datasets, 2 seeds, short training), ``paper`` (the
published protocol: 10 seeds, full training).
"""

import argparse

from repro.core import (
    ExperimentConfig,
    format_fig7,
    format_table1,
    run_fig5,
    run_fig6,
    run_fig7_ablation,
    run_mu_extraction,
    run_table1,
    run_table2,
    run_table3,
)
from repro.hw import format_hardware_table
from repro.utils import render_table


def get_config(scale: str) -> ExperimentConfig:
    if scale == "paper":
        return ExperimentConfig.paper()
    if scale == "ci":
        return ExperimentConfig.ci()
    return ExperimentConfig.smoke()


def do_table1(config: ExperimentConfig) -> None:
    print("\n=== Table I: accuracy under ±10% variation + perturbed inputs ===")
    print(format_table1(run_table1(config, verbose=True)))


def do_table2(config: ExperimentConfig) -> None:
    print("\n=== Table II: average runtime per training step ===")
    timings = run_table2(config)
    rows = [[k, f"{v*1e3:.1f} ms"] for k, v in timings.items()]
    print(render_table(["Model", "Runtime / step"], rows))


def do_table3(config: ExperimentConfig) -> None:
    print("\n=== Table III: hardware costs, baseline vs proposed ===")
    print(format_hardware_table(run_table3(config)))


def do_fig5(config: ExperimentConfig) -> None:
    print("\n=== Fig. 5: no-variation-aware baseline under stress ===")
    result = run_fig5(config)
    rows = [[k.replace("_", " "), f"{v:.3f}"] for k, v in result.items()]
    print(render_table(["Condition", "Accuracy"], rows))


def do_fig6(config: ExperimentConfig) -> None:
    print("\n=== Fig. 6: augmentation techniques on PowerCons ===")
    series = run_fig6()
    header = ["t"] + list(series)
    length = len(series["original"])
    rows = [
        [str(t)] + [f"{series[k][t]:.3f}" for k in series]
        for t in range(0, length, max(1, length // 16))
    ]
    print(render_table(header, rows))


def do_fig7(config: ExperimentConfig) -> None:
    print("\n=== Fig. 7: VA / AT / SO-LF ablation ===")
    print(format_fig7(run_fig7_ablation(config, verbose=True)))


def do_mu(config: ExperimentConfig) -> None:
    print("\n=== Sec. III-2: coupling-factor µ extraction ===")
    result = run_mu_extraction(samples=12)
    rows = [[k, f"{v:.3f}"] for k, v in result.items()]
    print(render_table(["Statistic", "Value"], rows))


ARTEFACTS = {
    "table1": do_table1,
    "table2": do_table2,
    "table3": do_table3,
    "fig5": do_fig5,
    "fig6": do_fig6,
    "fig7": do_fig7,
    "mu": do_mu,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "ci", "paper"), default="smoke")
    parser.add_argument("--table", choices=("1", "2", "3"), default=None)
    parser.add_argument("--figure", choices=("5", "6", "7"), default=None)
    parser.add_argument("--mu", action="store_true", help="run the µ extraction study")
    args = parser.parse_args()

    config = get_config(args.scale)
    selected = []
    if args.table:
        selected.append(f"table{args.table}")
    if args.figure:
        selected.append(f"fig{args.figure}")
    if args.mu:
        selected.append("mu")
    if not selected:
        selected = list(ARTEFACTS)

    for name in selected:
        ARTEFACTS[name](config)


if __name__ == "__main__":
    main()
