"""Quickstart: train a robustness-aware ADAPT-pNC on one dataset.

Runs in under a minute on a laptop CPU:

    python examples/quickstart.py [dataset]

Trains the proposed model with variation-aware training and data
augmentation, then reports accuracy on the clean test set and under
±10 % printed-component variation.
"""

import sys

import numpy as np

from repro.augment import default_config
from repro.core import AdaptPNC, Trainer, TrainingConfig, accuracy, evaluate_under_variation
from repro.data import load_dataset
from repro.hw import count_devices, estimate_power


def main(dataset_name: str = "PowerCons") -> None:
    print(f"== ADAPT-pNC quickstart on {dataset_name} ==")
    dataset = load_dataset(dataset_name, n_samples=120, seed=0)
    print(
        f"dataset: {dataset.info.description} "
        f"({dataset.info.n_classes} classes, splits {dataset.sizes()})"
    )

    model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    trainer = Trainer(
        model,
        TrainingConfig.ci(),
        variation_aware=True,
        augmentation=default_config(dataset_name),
        seed=0,
    )
    history = trainer.fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)
    print(f"trained {history.epochs_run} epochs, best val loss {history.best_val_loss:.4f}")

    clean = accuracy(model, dataset.x_test, dataset.y_test)
    robust = evaluate_under_variation(
        model, dataset.x_test, dataset.y_test, delta=0.10, mc_samples=10, seed=0
    )
    print(f"clean test accuracy:              {clean:.3f}")
    print(f"accuracy under ±10% variation:    {robust.mean:.3f} ± {robust.std:.3f}")

    devices = count_devices(model)
    power = estimate_power(model)
    print(
        f"printed hardware: {devices.transistors} transistors, "
        f"{devices.resistors} resistors, {devices.capacitors} capacitors "
        f"({devices.total} devices, {power.total_mw:.3f} mW static)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "PowerCons")
