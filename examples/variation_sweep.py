"""Robustness sweep: accuracy vs printing-variation level.

Trains the baseline pTPNC (no variation awareness) and the proposed
ADAPT-pNC once each, then evaluates both across increasing component
variation (0 % - 30 %).  The baseline degrades steeply while the
variation-aware model holds — the core claim of the paper, extended
beyond the ±10 % headline operating point.

    python examples/variation_sweep.py [dataset]
"""

import sys

import numpy as np

from repro.augment import default_config
from repro.core import AdaptPNC, PTPNC, Trainer, TrainingConfig, evaluate_under_variation
from repro.data import load_dataset
from repro.utils import render_table

DELTAS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.30)


def main(dataset_name: str = "CBF") -> None:
    print(f"== Variation sweep on {dataset_name} ==")
    dataset = load_dataset(dataset_name, n_samples=120, seed=0)

    baseline = PTPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    Trainer(baseline, TrainingConfig.ci(), variation_aware=False, seed=0).fit(
        dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
    )

    proposed = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    Trainer(
        proposed,
        TrainingConfig.ci(),
        variation_aware=True,
        augmentation=default_config(dataset_name),
        seed=0,
    ).fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)

    rows = []
    for delta in DELTAS:
        base = evaluate_under_variation(
            baseline, dataset.x_test, dataset.y_test, delta=delta, mc_samples=10, seed=1
        )
        prop = evaluate_under_variation(
            proposed, dataset.x_test, dataset.y_test, delta=delta, mc_samples=10, seed=1
        )
        rows.append(
            [
                f"{delta:.0%}",
                f"{base.mean:.3f} ± {base.std:.3f}",
                f"{prop.mean:.3f} ± {prop.std:.3f}",
                f"{prop.mean - base.mean:+.3f}",
            ]
        )
    print(render_table(["Variation", "pTPNC baseline", "ADAPT-pNC", "Gain"], rows))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "CBF")
