"""Run the complete evaluation at a chosen scale and save results.

Produces ``results/<scale>/`` with a text report and a JSON record for
every table and figure — the source of the numbers in EXPERIMENTS.md.

    python examples/run_full_evaluation.py --scale ci
"""

import argparse
import json
import pathlib
import time

from repro.core import (
    ExperimentConfig,
    format_fig7,
    format_table1,
    run_fig5,
    run_fig7_ablation,
    run_mu_extraction,
    run_table1,
    run_table2,
    run_table3,
)
from repro.hw import format_hardware_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "ci", "paper"), default="ci")
    parser.add_argument("--out", default=None)
    args = parser.parse_args()

    config = {
        "paper": ExperimentConfig.paper,
        "ci": ExperimentConfig.ci,
        "smoke": ExperimentConfig.smoke,
    }[args.scale]()
    out_dir = pathlib.Path(args.out or f"results/{args.scale}")
    out_dir.mkdir(parents=True, exist_ok=True)

    record = {"scale": args.scale, "datasets": list(config.datasets), "seeds": list(config.seeds)}
    report_lines = [f"ADAPT-pNC evaluation — scale={args.scale}", ""]

    t0 = time.time()
    table1 = run_table1(config, verbose=True)
    record["table1"] = {
        name: {kind: {"mean": r.mean, "std": r.std} for kind, r in entry.items()}
        for name, entry in table1.items()
    }
    report_lines += ["=== Table I ===", format_table1(table1), ""]
    print(f"table1 done in {time.time()-t0:.0f}s", flush=True)

    timings = run_table2(config)
    record["table2_seconds_per_step"] = timings
    report_lines += [
        "=== Table II (seconds per training step) ===",
        json.dumps(timings, indent=2),
        "",
    ]
    print("table2 done", flush=True)

    rows = run_table3(config)
    record["table3"] = [
        {
            "dataset": r.dataset,
            "baseline": r.baseline.as_row(),
            "proposed": r.proposed.as_row(),
            "baseline_power_mw": r.baseline_power_mw,
            "proposed_power_mw": r.proposed_power_mw,
        }
        for r in rows
    ]
    report_lines += ["=== Table III ===", format_hardware_table(rows), ""]
    print("table3 done", flush=True)

    fig5 = run_fig5(config, dataset_name="CBF")
    record["fig5"] = fig5
    report_lines += ["=== Fig. 5 (baseline pTPNC on CBF) ===", json.dumps(fig5, indent=2), ""]
    print("fig5 done", flush=True)

    t0 = time.time()
    fig7 = run_fig7_ablation(config, verbose=True)
    record["fig7"] = {
        name: {mode: {"mean": r.mean, "std": r.std} for mode, r in modes.items()}
        for name, modes in fig7.items()
    }
    report_lines += ["=== Fig. 7 (ablation) ===", format_fig7(fig7), ""]
    print(f"fig7 done in {time.time()-t0:.0f}s", flush=True)

    mu = run_mu_extraction(samples=20)
    record["mu_extraction"] = mu
    report_lines += ["=== µ extraction ===", json.dumps(mu, indent=2), ""]

    (out_dir / "report.txt").write_text("\n".join(report_lines))
    (out_dir / "results.json").write_text(json.dumps(record, indent=2))

    from repro.report import render_report

    (out_dir / "report.md").write_text(render_report(record))
    print(f"wrote {out_dir}/report.txt, report.md and results.json")


if __name__ == "__main__":
    main()
