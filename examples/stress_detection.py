"""Near-sensor stress detection — the paper's motivating application.

The paper motivates temporal printed circuits with wearable stress
detection from electrodermal activity (EDA) [26]: "the absolute values
of sensory signals may not provide significant insights due to
individual variability; instead, the temporal dynamics of these signals
are more informative" (Sec. III).

This example builds exactly that scenario: synthetic EDA traces whose
*tonic (baseline) level differs per wearer* — amplitude alone carries
no class information — while stress onset shows as a slow tonic rise
decorated with skin-conductance responses (fast rise, slow decay).
The baseline first-order pTPNC and the SO-LF ADAPT-pNC are trained
identically and compared under ±10 % printed-component variation.

    python examples/stress_detection.py
"""

import numpy as np

from repro.core import AdaptPNC, PTPNC, Trainer, TrainingConfig, evaluate_under_variation
from repro.data.preprocessing import normalize_series, train_val_test_split


def generate_eda(n: int, length: int = 64, seed: int = 0):
    """Synthetic electrodermal activity: calm (0) vs stress onset (1).

    Every subject has a random tonic level in 2-12 µS (uninformative).
    Stress shows as a rising tonic drift plus sporadic skin-conductance
    responses; calm traces drift randomly by a much smaller amount.
    """
    rng = np.random.default_rng(seed)
    frac = np.arange(length) / length
    steps = np.arange(length)
    x = np.zeros((n, length))
    y = rng.integers(0, 2, size=n)
    for i in range(n):
        tonic = rng.uniform(2.0, 12.0)  # microsiemens; per-subject
        trace = tonic + rng.normal(0, 0.15, length)
        if y[i] == 1:
            trace += rng.uniform(1.0, 2.0) * frac  # stress onset: tonic rise
            for _ in range(rng.poisson(3) + 1):  # SCR events
                onset = rng.integers(4, length - 6)
                amp = rng.uniform(0.3, 0.8)
                response = (
                    amp
                    * (1 - np.exp(-(steps - onset) / 1.5))
                    * np.exp(-(steps - onset) / 8.0)
                )
                trace += np.where(steps >= onset, response, 0.0)
        else:
            trace += rng.normal(0, 0.3) * frac  # small aimless drift
        x[i] = trace
    return x, y


def main(seeds: int = 3) -> None:
    print("== Printed stress detection from EDA dynamics ==")
    x_raw, y = generate_eda(150, seed=0)
    x = normalize_series(x_raw)  # per-series: removes the tonic level
    x_train, y_train, x_val, y_val, x_test, y_test = train_val_test_split(x, y, seed=1)

    results = {}
    for name, model_cls, variation_aware in (
        ("pTPNC (first-order, no VA)", PTPNC, False),
        ("ADAPT-pNC (SO-LF + VA)", AdaptPNC, True),
    ):
        accs = []
        for seed in range(seeds):
            model = model_cls(2, rng=np.random.default_rng(seed))
            trainer = Trainer(
                model, TrainingConfig.ci(), variation_aware=variation_aware, seed=seed
            )
            trainer.fit(x_train, y_train, x_val, y_val)
            accs.append(
                evaluate_under_variation(
                    model, x_test, y_test, delta=0.10, mc_samples=8, seed=0
                ).mean
            )
        results[name] = (float(np.mean(accs)), float(np.std(accs)))
        print(
            f"{name:<28} accuracy under ±10% variation: "
            f"{results[name][0]:.3f} ± {results[name][1]:.3f}"
        )

    gain = results["ADAPT-pNC (SO-LF + VA)"][0] - results["pTPNC (first-order, no VA)"][0]
    print(f"\nSO-LF + variation-aware training gain: {gain:+.3f} accuracy")
    print("(the slow tonic rise must be separated from SCR transients and sensor")
    print(" noise — the second-order filter's sharper cutoff does exactly that)")


if __name__ == "__main__":
    main()
