"""Production hardening: quantise, check corners/faults, trim instances.

A trained model is only half the story — shipping a printed classifier
means surviving the production flow.  This example walks the full
sign-off a printed-circuit designer would run:

1. train a variation-aware ADAPT-pNC;
2. **quantise** every component to an E12-style printable value grid;
3. **corner analysis** — does a systematically slow/fast print run
   still classify?
4. **fault tolerance** — missing-droplet defects (open crossings, dead
   activations);
5. **post-fab trimming** — recover weak fabricated instances by tuning
   only their bias conductances.

    python examples/production_hardening.py [dataset]
"""

import sys
from dataclasses import replace

import numpy as np

from repro.analysis import corner_analysis, fault_sweep
from repro.augment import default_config
from repro.circuits import quantize_model
from repro.core import (
    AdaptPNC,
    Trainer,
    TrainingConfig,
    calibration_study,
    evaluate_under_variation,
)
from repro.data import load_dataset
from repro.utils import render_table


def main(dataset_name: str = "CBF") -> None:
    print(f"== Production hardening on {dataset_name} ==")
    dataset = load_dataset(dataset_name, n_samples=120, seed=0)
    model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    Trainer(
        model,
        replace(TrainingConfig.ci(), max_epochs=100),
        variation_aware=True,
        augmentation=default_config(dataset_name),
        seed=0,
    ).fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)

    robust = evaluate_under_variation(
        model, dataset.x_test, dataset.y_test, delta=0.10, mc_samples=8, seed=0
    )
    print(f"\n1. trained: robust accuracy {robust.mean:.3f} ± {robust.std:.3f}")

    report = quantize_model(model, values_per_decade=12)
    robust_q = evaluate_under_variation(
        model, dataset.x_test, dataset.y_test, delta=0.10, mc_samples=8, seed=0
    )
    print(
        f"2. quantised to E12 grid ({report.n_quantized} components, "
        f"max snap error {report.max_relative_error:.1%}): "
        f"robust accuracy {robust_q.mean:.3f}"
    )

    corners = corner_analysis(model, dataset.x_test, dataset.y_test, delta=0.10)
    rows = [[c, f"{a:.3f}"] for c, a in corners.accuracy.items()]
    print("\n3. process corners:")
    print(render_table(["Corner", "Accuracy"], rows))
    print(f"   worst corner: {corners.worst_corner()} (spread {corners.spread():.3f})")

    sweep = fault_sweep(model, dataset.x_test, dataset.y_test, max_faults=2, trials=5)
    rows = [
        [kind, r.n_faults, f"{r.mean_accuracy:.3f}"]
        for kind, results in sweep.items()
        for r in results
    ]
    print("\n4. missing-droplet fault tolerance:")
    print(render_table(["Fault", "#defects", "Accuracy"], rows))

    results = calibration_study(
        model,
        dataset.x_val,
        dataset.y_val,
        dataset.x_test,
        dataset.y_test,
        instances=4,
        delta=0.15,
        epochs=30,
    )
    rows = [
        [r.instance_seed, f"{r.accuracy_before:.3f}", f"{r.accuracy_after:.3f}", f"{r.gain:+.3f}"]
        for r in results
    ]
    print("\n5. post-fabrication bias trimming (±15% instances):")
    print(render_table(["Instance", "Before", "After", "Gain"], rows))
    print(f"   mean recovery: {np.mean([r.gain for r in results]):+.3f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "CBF")
