"""Deriving the ptanh η parameters from physical component values.

Sec. II-B: the printed tanh-like activation's transfer
``V_out = η₁ + η₂·tanh((V_in − η₃)·η₄)`` has its η "determined by
component values q^A = [R₁, R₂, T₁, T₂]".  The authors characterise the
circuit in Cadence; this example runs the same study with the in-repo
nonlinear MNA engine and its behavioural n-EGT model:

1. build the two-stage resistor-loaded EGT cascade;
2. sweep the DC transfer with the Newton solver;
3. fit η, and show how each component value moves it.

    python examples/ptanh_characterization.py
"""

import numpy as np

from repro.circuits import derive_eta, make_printed_tanh
from repro.spice import EGTParameters
from repro.utils import render_table


def main() -> None:
    print("== ptanh characterisation from q^A = [R1, R2, T1, T2] ==")

    rows = []
    designs = [
        ("nominal", dict(r1=20e3, r2=20e3)),
        ("small loads", dict(r1=5e3, r2=5e3)),
        ("large loads", dict(r1=100e3, r2=100e3)),
        (
            "high-V_T transistors",
            dict(r1=20e3, r2=20e3, t1=EGTParameters(v_t=0.45), t2=EGTParameters(v_t=0.45)),
        ),
        (
            "strong transistors",
            dict(r1=20e3, r2=20e3, t1=EGTParameters(k=4e-4), t2=EGTParameters(k=4e-4)),
        ),
    ]
    for label, kwargs in designs:
        fit = derive_eta(points=40, **kwargs)
        rows.append(
            [
                label,
                f"{fit.eta1:.3f}",
                f"{fit.eta2:.3f}",
                f"{fit.eta3:.3f}",
                f"{fit.eta4:.2f}",
                f"{fit.rms_error * 1e3:.1f} mV",
            ]
        )
    print(render_table(["Design", "η1", "η2", "η3", "η4", "fit RMS"], rows))
    print("\n(larger loads -> higher stage gain -> steeper η4;")
    print(" higher V_T shifts the threshold η3 — the knobs a designer prints)")

    fit = derive_eta(r1=20e3, r2=20e3)
    act = make_printed_tanh(4, fit, rng=np.random.default_rng(0))
    print(
        f"\nbuilt a 4-neuron PrintedTanh initialised at the physical η "
        f"(η2={act.eta2.data[0]:.3f}, η4={act.eta4.data[0]:.2f}) — drop it into a "
        f"PrintedTemporalProcessingBlock to train from a physically grounded start."
    )


if __name__ == "__main__":
    main()
