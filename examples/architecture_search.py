"""Architecture search for ADAPT-pNCs — the paper's future-work direction.

"Future work may include new architectural search methodologies for
ADAPT-pNCs to further address sensor variations" (Sec. V).  This
example searches hidden width × filter order × logit scale on one
dataset, scoring candidates by accuracy *under component variation*
(the deployed metric), with successive halving pruning weak candidates
early.  It then reports the hardware cost of the winner — the
accuracy/devices trade-off a printed-circuit designer actually faces.

    python examples/architecture_search.py [dataset]
"""

import sys

import numpy as np

from repro.core import search_architecture
from repro.core.models import PrintedTemporalClassifier
from repro.data import load_dataset
from repro.hw import count_devices, estimate_power
from repro.utils import render_table


def main(dataset_name: str = "CBF") -> None:
    print(f"== ADAPT-pNC architecture search on {dataset_name} ==")
    dataset = load_dataset(dataset_name, n_samples=120, seed=0)

    results = search_architecture(
        dataset,
        n_trials=6,
        budgets=(1, 3),
        base_epochs=20,
        eval_mc=4,
        seed=0,
    )

    rows = [
        [
            r.hidden_size,
            f"{r.filter_order} ({'SO-LF' if r.filter_order == 2 else 'first-order'})",
            f"{r.logit_scale:.1f}",
            f"{r.robust_accuracy:.3f}",
        ]
        for r in results
    ]
    print("\nFinal round (best first):")
    print(render_table(["Hidden", "Filter order", "Logit scale", "Robust val acc"], rows))

    best = results[0]
    model = PrintedTemporalClassifier(
        dataset.info.n_classes,
        best.hidden_size,
        filter_order=best.filter_order,
        rng=np.random.default_rng(0),
    )
    devices = count_devices(model)
    power = estimate_power(model)
    print(
        f"\nwinning architecture hardware: {devices.total} devices "
        f"({devices.transistors}T / {devices.resistors}R / {devices.capacitors}C), "
        f"{power.total_mw:.3f} mW static"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "CBF")
