"""Manufacturing yield and component sensitivity of a trained pNC.

Printed circuits are fabricated with ±10 % component variation, so the
economic question is not mean accuracy but *yield*: what fraction of
printed instances meet the application's accuracy spec?  This example
trains the baseline pTPNC and the proposed ADAPT-pNC, compares their
yield curves, and asks which circuit group (filters / crossbar /
activation) the accuracy is most sensitive to.

    python examples/yield_and_sensitivity.py [dataset]
"""

import sys

import numpy as np

from repro.analysis import component_sensitivity, estimate_yield, yield_curve
from repro.augment import default_config
from repro.core import AdaptPNC, PTPNC, Trainer, TrainingConfig
from repro.data import load_dataset
from repro.utils import render_table


def main(dataset_name: str = "GPOVY") -> None:
    print(f"== Yield & sensitivity on {dataset_name} ==")
    dataset = load_dataset(dataset_name, n_samples=120, seed=0)

    baseline = PTPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    Trainer(baseline, TrainingConfig.ci(), variation_aware=False, seed=0).fit(
        dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
    )
    proposed = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    Trainer(
        proposed,
        TrainingConfig.ci(),
        variation_aware=True,
        augmentation=default_config(dataset_name),
        seed=0,
    ).fit(dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val)

    thresholds = (0.5, 0.6, 0.7, 0.8, 0.9)
    base_curve = yield_curve(
        baseline, dataset.x_test, dataset.y_test, thresholds=thresholds, instances=40
    )
    prop_curve = yield_curve(
        proposed, dataset.x_test, dataset.y_test, thresholds=thresholds, instances=40
    )
    rows = [
        [f"acc >= {t:.1f}", f"{base_curve[t]:.0%}", f"{prop_curve[t]:.0%}"]
        for t in thresholds
    ]
    print("\nYield over 40 fabricated instances (±10% variation):")
    print(render_table(["Spec", "pTPNC baseline", "ADAPT-pNC"], rows))

    spec = estimate_yield(proposed, dataset.x_test, dataset.y_test, threshold=0.8, instances=40)
    print(f"\nADAPT-pNC @ 0.8 spec: {spec}")

    print("\nPer-group sensitivity of the proposed model (accuracy drop when")
    print("only that group varies by ±10%):")
    report = component_sensitivity(proposed, dataset.x_test, dataset.y_test, mc_samples=10)
    rows = [[group, f"{drop:+.3f}"] for group, drop in report.drops().items()]
    print(render_table(["Circuit group", "Accuracy drop"], rows))
    print(f"most sensitive group: {report.most_sensitive()}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "GPOVY")
