"""Filter design with the analog circuit simulator.

Reproduces the circuit-design workflow of Sec. IV-A1 without Cadence:

1. build a printable second-order RC filter netlist (sub-kΩ resistors,
   100 nF - 100 µF capacitors) loaded by a crossbar input;
2. obtain the magnitude response and -3 dB cutoff from an AC sweep;
3. obtain the step response from a backward-Euler transient run;
4. fit the coupling factor μ of the paper's discrete model (Eqs. 10-11)
   and check it lies in the published band μ ∈ [1, 1.3];
5. cross-validate the differentiable SO-LF layer against the simulator.

    python examples/filter_design_spice.py
"""

import numpy as np

from repro.autograd import Tensor
from repro.circuits import SecondOrderLearnableFilter, fit_mu, ideal_sampler
from repro.spice import Circuit, PiecewiseLinear, ac_sweep, cutoff_frequency, transient


def main() -> None:
    # -- chosen printable design -------------------------------------------
    r1, c1 = 800.0, 20e-6  # stage 1: tau = 16 ms
    r2, c2 = 150.0, 10e-6  # stage 2: tau = 1.5 ms (loads stage 1 noticeably)
    r_load = 500e3  # crossbar input resistance
    dt = 1e-3  # 1 kHz sensor sampling

    print("== SO-LF design study (MNA engine) ==")
    print(f"stage 1: R={r1:.0f}Ω C={c1*1e6:.0f}µF | stage 2: R={r2:.0f}Ω C={c2*1e6:.0f}µF")

    # -- AC characterisation ----------------------------------------------
    from repro.circuits.coupling import build_so_filter_circuit

    circuit = build_so_filter_circuit(r1, c1, r2, c2, r_load)
    freqs = np.logspace(0, 4, 200)
    response = ac_sweep(circuit, "vin", "out", freqs)
    fc = cutoff_frequency(response)
    rolloff = (
        response.magnitude_db[-1] - response.magnitude_db[len(freqs) // 2]
    ) / (np.log10(freqs[-1]) - np.log10(freqs[len(freqs) // 2]))
    print(f"-3 dB cutoff: {fc:.1f} Hz;  high-frequency roll-off: {rolloff:.1f} dB/decade")
    print("(second-order: roll-off approaches -40 dB/decade, vs -20 for first-order)")

    # -- coupling factor ------------------------------------------------------
    fit = fit_mu(r1, c1, r2, c2, r_load, dt=dt, steps=100)
    print(f"fitted coupling: µ1={fit.mu1:.3f}, µ2={fit.mu2:.3f} (paper band: [1, 1.3])")

    # -- cross-validation: differentiable layer vs circuit simulator ---------
    # The layer implements the *decoupled* discrete model; the netlist is
    # the physically coupled circuit.  With µ = 1 the model underestimates
    # the inter-stage current shunt; the fitted µ narrows the gap.  The
    # remainder is the frequency dependence of µ the paper acknowledges
    # ("µ is influenced by the frequency of the input signal, which is
    # typically unknown during the design stage").
    from repro.circuits.filters import _run_recurrence
    from repro.circuits.variation import NoVariation, VariationSampler

    flt = SecondOrderLearnableFilter(1, dt=dt, sampler=ideal_sampler())
    flt.stage1.log_r.data = np.log([r1])
    flt.stage1.log_c.data = np.log([c1])
    flt.stage2.log_r.data = np.log([r2])
    flt.stage2.log_c.data = np.log([c2])

    rng = np.random.default_rng(0)
    steps = 64
    signal = np.cumsum(rng.normal(0, 0.2, steps))  # random sensor walk

    def run_layer(mu1: float, mu2: float) -> np.ndarray:
        s1 = VariationSampler(model=NoVariation(), mu_low=mu1, mu_high=mu1, v0_max=0.0)
        s2 = VariationSampler(model=NoVariation(), mu_low=mu2, mu_high=mu2, v0_max=0.0)
        a1, b1 = flt.stage1.coefficients(dt, s1)
        a2, b2 = flt.stage2.coefficients(dt, s2)
        x = Tensor(signal.reshape(1, steps, 1))
        v0 = Tensor(np.zeros((1, 1)))
        inter = _run_recurrence(x, a1, b1, v0)
        return _run_recurrence(inter, a2, b2, v0).data[0, :, 0]

    net = Circuit("so_loaded")
    times = np.arange(steps + 1) * dt
    drive = np.concatenate([[signal[0]], signal])
    net.add_voltage_source("vin", "in", 0, PiecewiseLinear(times, drive))
    net.add_resistor("r1", "in", "m", r1)
    net.add_capacitor("c1", "m", 0, c1)
    net.add_resistor("r2", "m", "out", r2)
    net.add_capacitor("c2", "out", 0, c2)
    net.add_resistor("rl", "out", 0, r_load)
    sim = transient(net, dt=dt, steps=steps, probes=["out"])["out"][1:]

    rms = lambda e: float(np.sqrt(np.mean(e**2)))  # noqa: E731
    err_ideal = rms(run_layer(1.0, 1.0) - sim)
    err_fitted = rms(run_layer(fit.mu1, fit.mu2) - sim)
    print(f"layer (µ=1)      vs coupled netlist: RMS error {err_ideal:.4f} V")
    print(f"layer (µ fitted) vs coupled netlist: RMS error {err_fitted:.4f} V")


if __name__ == "__main__":
    main()
