"""Train a model, compile it to an analog netlist, verify at circuit level.

The differentiable ADAPT-pNC is an abstraction of a printed analog
circuit.  This example closes the loop:

1. train a small ADAPT-pNC on the Slope dataset;
2. compile the trained parameters into a full netlist (printed RC
   filters, crossbar resistor networks with inverters, behavioural
   ptanh stages);
3. stream test series through the netlist with the nonlinear MNA
   transient solver and compare circuit-level classifications with the
   differentiable model;
4. re-compile without inter-stage buffers to expose the physical
   coupling that the paper's μ factor approximates.

    python examples/compile_to_netlist.py
"""

import numpy as np

from repro.autograd import no_grad
from repro.compile import classify_series, compile_model, simulate_series
from repro.core import AdaptPNC, Trainer, TrainingConfig, accuracy
from repro.data import load_dataset


def main() -> None:
    print("== ADAPT-pNC -> analog netlist ==")
    dataset = load_dataset("Slope", n_samples=90, seed=0)
    model = AdaptPNC(dataset.info.n_classes, rng=np.random.default_rng(0))
    from dataclasses import replace

    Trainer(model, replace(TrainingConfig.ci(), max_epochs=60), variation_aware=True, seed=0).fit(
        dataset.x_train, dataset.y_train, dataset.x_val, dataset.y_val
    )
    print(f"trained model clean accuracy: {accuracy(model, dataset.x_test, dataset.y_test):.3f}")

    compiled = compile_model(model)
    c = compiled.circuit
    print(
        f"compiled netlist: {len(c.resistors)} resistors, {len(c.capacitors)} capacitors, "
        f"{len(c.vcvs)} controlled sources, {len(c.behavioral)} ptanh stages"
    )

    n_check = 8
    agree = 0
    worst = 0.0
    for i in range(n_check):
        series = dataset.x_test[i]
        with no_grad():
            ref = model(series.reshape(1, -1)).data[0] / model.logit_scale
        out = simulate_series(compiled, series)
        worst = max(worst, float(np.max(np.abs(out[-1] - ref))))
        if classify_series(compiled, series) == int(np.argmax(ref)):
            agree += 1
    print(f"circuit vs model on {n_check} test series: {agree}/{n_check} classifications agree")
    print(f"worst output-voltage deviation: {worst:.2e} V (buffered / µ=1)")

    coupled = compile_model(model, decouple=False)
    series = dataset.x_test[0]
    with no_grad():
        ref = model(series.reshape(1, -1)).data[0] / model.logit_scale
    out = simulate_series(coupled, series)
    print(
        f"without buffers (physical coupling): deviation "
        f"{np.max(np.abs(out[-1] - ref)):.3f} V — the effect the paper's µ factor models"
    )


if __name__ == "__main__":
    main()
