"""Multi-sensor fusion with a multi-input pTPB (Fig. 4).

The paper's Fig. 4 shows a 6-input temporal processing block fed by
"sensory signals from various inputs" — near-sensor fusion is exactly
where printed circuits live (a smart bandage reads temperature,
moisture and strain at once).  This example builds a 3-sensor scenario
where *no single channel* separates the classes; only the joint
temporal pattern does:

each sensor drifts up or down at random; the wound is "inflamed"
(class 1) exactly when temperature and moisture drift in the *same*
direction — an XOR across channels.  No single channel carries any
label information (each is 50/50 by construction); only the joint
pattern separates the classes.  A univariate model on each channel is
compared against the 3-channel fusion model.

    python examples/multisensor_fusion.py
"""

from dataclasses import replace

import numpy as np

from repro.core import (
    PrintedTemporalClassifier,
    Trainer,
    TrainingConfig,
    evaluate_under_variation,
)
from repro.data.preprocessing import train_val_test_split


def generate_bandage(n: int, length: int = 64, seed: int = 0):
    """Synthetic smart-bandage telemetry: (n, length, 3), labels (n,)."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 1.0, length)
    x = np.zeros((n, length, 3))
    y = np.zeros(n, dtype=np.int64)
    for i in range(n):
        temp_dir = rng.choice([-1.0, 1.0])
        moist_dir = rng.choice([-1.0, 1.0])
        y[i] = int(temp_dir == moist_dir)  # XOR across channels
        noise = rng.normal(0, 0.12, (length, 3))
        temp = temp_dir * 0.6 * t + rng.normal(0, 0.05)
        moist = moist_dir * 0.6 * t + rng.normal(0, 0.05)
        strain = 0.3 * np.sin(2 * np.pi * 3 * t + rng.uniform(0, 2 * np.pi))
        x[i, :, 0] = np.clip(temp + noise[:, 0], -1, 1)
        x[i, :, 1] = np.clip(moist + noise[:, 1], -1, 1)
        x[i, :, 2] = np.clip(strain + noise[:, 2], -1, 1)  # pure distractor
    return x, y


def train_and_score(x_train, y_train, x_val, y_val, x_test, y_test, channels, label):
    model = PrintedTemporalClassifier(
        2, hidden_size=6, in_channels=channels, rng=np.random.default_rng(1)
    )
    # The cross-channel XOR needs a longer schedule than the CI default.
    cfg = replace(TrainingConfig.ci(), max_epochs=300, lr_patience=25, min_lr=1e-5)
    Trainer(model, cfg, variation_aware=True, seed=0).fit(x_train, y_train, x_val, y_val)
    result = evaluate_under_variation(model, x_test, y_test, delta=0.10, mc_samples=8, seed=0)
    print(f"{label:<28} accuracy under ±10% variation: {result.mean:.3f} ± {result.std:.3f}")
    return result.mean


def main() -> None:
    print("== Smart-bandage multi-sensor fusion ==")
    x, y = generate_bandage(150, seed=0)
    splits = train_val_test_split(x, y, seed=1)
    x_train, y_train, x_val, y_val, x_test, y_test = splits

    single_scores = []
    for ch, name in enumerate(("temperature only", "moisture only", "strain only")):
        score = train_and_score(
            x_train[:, :, ch],
            y_train,
            x_val[:, :, ch],
            y_val,
            x_test[:, :, ch],
            y_test,
            channels=1,
            label=name,
        )
        single_scores.append(score)

    fused = train_and_score(
        x_train, y_train, x_val, y_val, x_test, y_test, channels=3,
        label="3-sensor fusion (Fig. 4)",
    )
    print(f"\nfusion gain over the best single sensor: {fused - max(single_scores):+.3f}")


if __name__ == "__main__":
    main()
